(* The specrepro command-line interface.

   Subcommands mirror the stages of the paper's methodology:
     list          the synthetic SPEC CPU2017 suite
     profile       whole-run profiling of one benchmark
     simpoints     simulation-point selection (optionally saving pinballs)
     replay        replay stored pinballs under pintools
     run           the full pipeline for one benchmark
     suite         the full pipeline for the whole suite (Table II + headlines)
     experiment    regenerate one of the paper's tables/figures
     report        aggregate a --trace-out file into per-stage totals
     serve         benchmark-as-a-service daemon over a Unix socket
     submit        send a job to (or query / drain) a running daemon
     query         inspect the daemon's append-only results store
     bench-regress gate a stored run against its history (exit 2 on fail)

   Pipeline-driving subcommands share one options surface (the [common]
   term group below): --scale, --quiet, --jobs, --sampler,
   --pinball-cache, --profile-cache, --warmup-insns, --slice-insns and
   --trace-out mean the same thing everywhere they appear.

   Reporting subcommands all take --json and emit one specrepro/v2
   envelope ({schema, command, options, result} — see Specrepro.Api),
   the same envelope the serve daemon speaks on the wire.

   Exit codes follow one convention everywhere:
     0  success
     1  bad input or a corrupt artifact (unknown benchmark, malformed
        trace/pinball/store, unreachable daemon, daemon-side errors)
     2  a quality gate failed (bench-regress past its ratio gate;
        bench/main.exe --gate / --gate-all) *)

open Cmdliner
open Specrepro

(* ------------------------------------------------------------------ *)
(* the shared options surface *)

type common = {
  scale : float;
  quiet : bool;
  jobs : int;
  sampler : Sp_simpoint.Sampler.kind;
  pinball_cache : string option;
  profile_cache : string option;
  mem_cache_mb : int option;
  warmup_insns : int option;
  slice_insns : int option;
  trace_out : string option;
}

let scale_arg =
  let doc =
    "Scale factor for the whole-run length (1.0 = the calibrated paper-like \
     length; tests and demos use less)."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let quiet_arg =
  let doc = "Suppress progress output." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel stages (suite fan-out, cold regional \
     replays, k-means, variance sweep).  1 runs fully sequentially; 0 picks \
     the hardware's recommended parallelism.  Any value produces identical \
     results — only wall-clock changes."
  in
  let env = Cmd.Env.info "SPECREPRO_JOBS" ~doc:"Default for $(b,--jobs)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc ~env)

let sampler_arg =
  let doc =
    "Simulation-point sampling methodology for the select stage: \
     $(b,simpoint) (k-means phase clustering with BIC-guided k, the \
     default), $(b,systematic) (periodic SMARTS-style design), \
     $(b,stratified) (two-phase stratified sampling with Neyman \
     allocation) or $(b,rss) (ranked-set sampling with repeated \
     subsampling).  Replay and warm-replay are sampler-agnostic."
  in
  let env = Cmd.Env.info "SPECREPRO_SAMPLER" ~doc:"Default for $(b,--sampler)." in
  Arg.(
    value
    & opt (enum Sp_simpoint.Sampler.kind_enum) Sp_simpoint.Sampler.Simpoint
    & info [ "sampler" ] ~docv:"SAMPLER" ~doc ~env)

let cache_arg =
  let doc =
    "Content-addressed pinball cache directory.  The whole pinball logged \
     for each (benchmark, slice length, scale) is stored under a digest key \
     and reused by later invocations instead of re-logging; corrupt or \
     stale entries are quarantined and recomputed.  Inspect the directory \
     with $(b,specrepro pinballs)."
  in
  let env =
    Cmd.Env.info "SPECREPRO_PINBALL_CACHE"
      ~doc:"Default for $(b,--pinball-cache)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "pinball-cache" ] ~docv:"DIR" ~doc ~env)

let profile_cache_arg =
  let doc =
    "Content-addressed profile-result cache directory.  The log+profile \
     stage's outputs (BBV slices, instruction mix, whole-run cache and \
     timing statistics) are stored keyed by (benchmark, slice length, \
     scale, warmup) and decoded by later invocations instead of replaying \
     the whole program under instrumentation; corrupt entries are \
     quarantined and recomputed.  Unless $(b,--pinball-cache) is also \
     given, the same directory caches the whole pinballs, so a fully-warm \
     re-run skips whole-program execution entirely."
  in
  let env =
    Cmd.Env.info "SPECREPRO_PROFILE_CACHE"
      ~doc:"Default for $(b,--profile-cache)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-cache" ] ~docv:"DIR" ~doc ~env)

let mem_cache_mb_arg =
  let doc =
    "Budget (MiB) of the in-memory decoded-artifact cache fronting the \
     pinball and profile caches: a hit skips the disk read, checksum sweep \
     and decode.  Strictly a performance knob — results are bit-identical \
     regardless.  0 disables; default 64."
  in
  let env =
    Cmd.Env.info "SPECREPRO_MEM_CACHE_MB"
      ~doc:"Default for $(b,--mem-cache-mb)."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-cache-mb" ] ~docv:"MB" ~doc ~env)

let warmup_insns_arg =
  let doc =
    "Warmup window per simulation point, in simulated instructions: each \
     warm regional replay trains the caches and predictor on this many \
     instructions preceding the point (clamped to the previous point's \
     end) before measuring.  Default: 150000, sized against the scaled \
     L3 as the paper sizes its 500M-cycle warmup against the real one."
  in
  let env =
    Cmd.Env.info "SPECREPRO_WARMUP_INSNS"
      ~doc:"Default for $(b,--warmup-insns)."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "warmup-insns" ] ~docv:"N" ~doc ~env)

let slice_insns_arg =
  let doc =
    "Override the profiling slice length in simulated instructions \
     (default: the calibrated 30 paper-Minsn equivalent)."
  in
  Arg.(
    value & opt (some int) None & info [ "slice-insns" ] ~docv:"N" ~doc)

let trace_out_arg =
  let doc =
    "Record a span trace of the run and write it to $(docv) as Chrome \
     trace-event JSON (open in chrome://tracing or Perfetto, or summarise \
     with $(b,specrepro report))."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let common_term =
  let make scale quiet jobs sampler pinball_cache profile_cache mem_cache_mb
      warmup_insns slice_insns trace_out =
    {
      scale;
      quiet;
      jobs;
      sampler;
      pinball_cache;
      profile_cache;
      mem_cache_mb;
      warmup_insns;
      slice_insns;
      trace_out;
    }
  in
  Term.(
    const make $ scale_arg $ quiet_arg $ jobs_arg $ sampler_arg $ cache_arg
    $ profile_cache_arg $ mem_cache_mb_arg $ warmup_insns_arg
    $ slice_insns_arg $ trace_out_arg)

let resolve_jobs jobs = if jobs <= 0 then Sp_util.Pool.default_jobs () else jobs

let options_of c =
  let base = Pipeline.default_options in
  Pipeline.normalize
    {
      base with
      Pipeline.slices_scale = c.scale;
      sampler = c.sampler;
      slice_insns =
        Option.value ~default:base.Pipeline.slice_insns c.slice_insns;
      warmup_insns =
        Option.value ~default:base.Pipeline.warmup_insns c.warmup_insns;
      progress = not c.quiet;
      jobs = resolve_jobs c.jobs;
      pinball_cache = c.pinball_cache;
      profile_cache = c.profile_cache;
      mem_cache_mb =
        Option.value ~default:base.Pipeline.mem_cache_mb c.mem_cache_mb;
    }

(* Run [f] with span tracing enabled when --trace-out was given; the
   trace file is written even when [f] raises.  Argument validation
   (and its [exit 1]s) must happen before entering — [Stdlib.exit]
   does not unwind the stack, so it would skip the trace write. *)
let with_trace c f =
  match c.trace_out with
  | None -> f ()
  | Some path ->
      Sp_obs.Tracer.enable ();
      Fun.protect
        ~finally:(fun () ->
          Sp_obs.Tracer.write path;
          if not c.quiet then
            Sp_obs.Log.printf "wrote %d spans to %s\n"
              (Sp_obs.Tracer.span_count ()) path)
        f

let find_bench name =
  match Sp_workloads.Suite.find name with
  | spec -> Ok spec
  | exception Not_found ->
      Error
        (Printf.sprintf "unknown benchmark %S; try `specrepro list'" name)

let bench_arg =
  let doc = "Benchmark name (e.g. 505.mcf_r or mcf_r)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)

(* ------------------------------------------------------------------ *)
(* the --json reporting surface: one flag, one schema *)

let json_arg =
  let doc =
    "Emit machine-readable JSON on stdout instead of the text report: \
     one $(b,specrepro/v2) envelope \
     ({schema, command, options, result}), byte-compatible with the \
     serve daemon's wire replies."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let num x = Sp_obs.Json.Num x
let str s = Sp_obs.Json.Str s
let numi i = Sp_obs.Json.Num (float_of_int i)
let run_stats_json = Api.run_stats_json
let mix_json = Api.mix_json
let bench_result_json r = Sp_obs.Json.Obj (Api.bench_result_fields r)
let table_json = Api.table_json
let metrics_json = Api.metrics_json
let emit_json = Api.emit

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let run json =
    if json then
      emit_json ~command:"list" ~options:Api.no_options
        ~result:
          (Sp_obs.Json.Obj
             [
               ( "benchmarks",
            Sp_obs.Json.List
              (List.map
                 (fun (s : Sp_workloads.Benchspec.t) ->
                   Sp_obs.Json.Obj
                     [
                       ("name", str s.Sp_workloads.Benchspec.name);
                       ( "class",
                         str
                           (Sp_workloads.Benchspec.suite_class_name
                              s.Sp_workloads.Benchspec.suite_class) );
                       ( "paper_points",
                         numi s.Sp_workloads.Benchspec.planted_phases );
                       ("paper_n90", numi s.Sp_workloads.Benchspec.planted_n90);
                       ( "kernels",
                         Sp_obs.Json.List
                           (List.map
                              (fun (k : Sp_workloads.Kernel.t) ->
                                str k.Sp_workloads.Kernel.name)
                              s.Sp_workloads.Benchspec.palette) );
                     ])
                 Sp_workloads.Suite.all) );
             ])
    else begin
      let t =
        Sp_util.Table.create ~title:"Synthetic SPEC CPU2017 suite"
          [
            ("Benchmark", Sp_util.Table.Left);
            ("Class", Sp_util.Table.Left);
            ("Sim points (paper)", Sp_util.Table.Right);
            ("90th-pct (paper)", Sp_util.Table.Right);
            ("Kernels", Sp_util.Table.Left);
          ]
      in
      List.iter
        (fun (s : Sp_workloads.Benchspec.t) ->
          Sp_util.Table.add_row t
            [
              s.Sp_workloads.Benchspec.name;
              Sp_workloads.Benchspec.suite_class_name
                s.Sp_workloads.Benchspec.suite_class;
              string_of_int s.Sp_workloads.Benchspec.planted_phases;
              string_of_int s.Sp_workloads.Benchspec.planted_n90;
              String.concat ","
                (List.map
                   (fun (k : Sp_workloads.Kernel.t) ->
                     k.Sp_workloads.Kernel.name)
                   s.Sp_workloads.Benchspec.palette);
            ])
        Sp_workloads.Suite.all;
      Sp_util.Table.print t
    end
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the synthetic SPEC CPU2017 benchmarks.")
    Term.(const run $ json_arg)

(* ------------------------------------------------------------------ *)
(* profile *)

let profile_cmd =
  let run bench common json =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        with_trace common @@ fun () ->
        let options = options_of common in
        let profile = Pipeline.profile_for_sweep ~options spec in
        let w = profile.Pipeline.sweep_whole_stats in
        let imix = profile.Pipeline.sweep_imix in
        if json then
          emit_json ~command:"profile"
            ~options:
              (Api.options_json ~benchmark:spec.Sp_workloads.Benchspec.name
                 options)
            ~result:
              (Sp_obs.Json.Obj
                 [
                   ("benchmark", str spec.Sp_workloads.Benchspec.name);
                   ( "slices",
                     numi (Array.length profile.Pipeline.sweep_slices) );
                   ("whole", run_stats_json w);
                   ( "imix",
                     Sp_obs.Json.Obj
                       (Array.to_list
                          (Array.map (fun (name, c) -> (name, numi c)) imix))
                   );
                 ])
        else begin
          Printf.printf "%s: %.0f instructions, %d slices\n"
            spec.Sp_workloads.Benchspec.name w.Runstats.insns
            (Array.length profile.Pipeline.sweep_slices);
          Printf.printf "instruction mix: %s\n"
            (Format.asprintf "%a" Sp_pin.Mix.pp w.Runstats.mix);
          Printf.printf "by kind:%s\n"
            (String.concat ""
               (List.filter_map
                  (fun (name, c) ->
                    if c = 0 then None
                    else Some (Printf.sprintf " %s=%d" name c))
                  (Array.to_list imix)));
          Printf.printf
            "cache miss rates (Table I hierarchy, capacity-scaled): L1D \
             %.2f%% L2 %.2f%% L3 %.2f%%\n"
            (w.Runstats.l1d_miss *. 100.0)
            (w.Runstats.l2_miss *. 100.0)
            (w.Runstats.l3_miss *. 100.0);
          Printf.printf "timing model CPI: %.3f\n" w.Runstats.cpi
        end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run one benchmark to completion under the profiling pintools.")
    Term.(const run $ bench_arg $ common_term $ json_arg)

(* ------------------------------------------------------------------ *)
(* simpoints *)

let simpoints_cmd =
  let out_arg =
    let doc = "Directory to save Whole and Regional Pinballs into." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR" ~doc)
  in
  let max_k_arg =
    let doc = "Maximum number of clusters (the paper uses 35)." in
    Arg.(value & opt int 35 & info [ "max-k" ] ~docv:"K" ~doc)
  in
  let run bench common json max_k out =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        with_trace common @@ fun () ->
        let options = options_of common in
        let options =
          {
            options with
            Pipeline.simpoint_config =
              { options.Pipeline.simpoint_config with max_k };
          }
        in
        let profile = Pipeline.profile_for_sweep ~options spec in
        let sel =
          Sp_simpoint.Sampler.select ~config:options.Pipeline.simpoint_config
            options.Pipeline.sampler ~slice_len:options.Pipeline.slice_insns
            profile.Pipeline.sweep_slices
        in
        if json then
          emit_json ~command:"simpoints"
            ~options:
              (Api.options_json ~benchmark:spec.Sp_workloads.Benchspec.name
                 ~extra:[ ("max_k", numi max_k) ]
                 options)
            ~result:
              (Sp_obs.Json.Obj
                 [
                   ("benchmark", str spec.Sp_workloads.Benchspec.name);
                   ( "sampler",
                     str (Sp_simpoint.Sampler.name options.Pipeline.sampler)
                   );
                   ("chosen_k", numi sel.Sp_simpoint.Sampler.groups);
                   ( "num_slices",
                     numi (Array.length profile.Pipeline.sweep_slices) );
                   ( "diagnostics",
                     Sp_obs.Json.Obj
                       (List.map
                          (fun (k, v) -> (k, num v))
                          sel.Sp_simpoint.Sampler.diagnostics) );
                   ( "points",
                     Sp_obs.Json.List
                       (Array.to_list sel.Sp_simpoint.Sampler.points
                       |> List.map (fun (p : Sp_simpoint.Simpoints.point) ->
                              Sp_obs.Json.Obj
                                [
                                  ( "cluster",
                                    numi p.Sp_simpoint.Simpoints.cluster );
                                  ( "weight",
                                    num p.Sp_simpoint.Simpoints.weight );
                                  ( "start_icount",
                                    numi p.Sp_simpoint.Simpoints.start_icount
                                  );
                                  ( "length",
                                    numi p.Sp_simpoint.Simpoints.length );
                                ])) );
                 ])
        else begin
          Printf.printf "%s: %d simulation points over %d slices (%s)\n"
            spec.Sp_workloads.Benchspec.name
            (Array.length sel.Sp_simpoint.Sampler.points)
            (Array.length profile.Pipeline.sweep_slices)
            (Sp_simpoint.Sampler.name options.Pipeline.sampler);
          Array.iter
            (fun p ->
              Printf.printf "  %s\n"
                (Format.asprintf "%a" Sp_simpoint.Simpoints.pp_point p))
            sel.Sp_simpoint.Sampler.points
        end;
        match out with
        | None -> ()
        | Some dir ->
            let saved = ref 1 in
            ignore
              (Sp_pinball.Store.save ~dir
                 profile.Pipeline.sweep_whole.Sp_pinball.Logger.pinball);
            Sp_pinball.Logger.scan_regions profile.Pipeline.sweep_whole
              sel.Sp_simpoint.Sampler.points (fun pb ->
                ignore (Sp_pinball.Store.save ~dir pb);
                incr saved);
            if not json then
              Printf.printf "saved %d pinballs under %s\n" !saved dir
  in
  Cmd.v
    (Cmd.info "simpoints"
       ~doc:"Select simulation points for a benchmark (optionally saving \
             pinballs).")
    Term.(
      const run $ bench_arg $ common_term $ json_arg $ max_k_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* replay *)

let replay_cmd =
  let files_arg =
    let doc = "Pinball files (.pb) to replay." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"PINBALL" ~doc)
  in
  let replay_one ~json path =
    match Sp_pinball.Store.load path with
    | Error e ->
        Printf.eprintf "specrepro replay: %s\n"
          (Sp_pinball.Store.error_message e);
        None
    | Ok pb ->
        let prog = pb.Sp_pinball.Pinball.program in
        let mixt = Sp_pin.Ldstmix.create () in
        let cache =
          Sp_pin.Allcache_tool.create ~config:Sp_cache.Config.allcache_sim prog
        in
        let core =
          Sp_cpu.Interval_core.create ~config:Sp_cpu.Core_config.i7_3770_sim
            prog
        in
        let r =
          Sp_pinball.Replayer.replay
            ~tools:
              [
                Sp_pin.Ldstmix.hooks mixt;
                Sp_pin.Allcache_tool.hooks cache;
                Sp_cpu.Interval_core.hooks core;
              ]
            pb
        in
        let stats = Sp_pin.Allcache_tool.stats cache in
        if json then
          Some
            (Sp_obs.Json.Obj
               [
                 ("file", str path);
                 ("pinball", str (Sp_pinball.Pinball.describe pb));
                 ("retired", numi r.Sp_pinball.Replayer.retired);
                 ("mix", mix_json (Sp_pin.Ldstmix.mix mixt));
                 ("l3_miss", num stats.Sp_cache.Hierarchy.l3.miss_rate);
                 ("cpi", num (Sp_cpu.Interval_core.cpi core));
               ])
        else begin
          Printf.printf "%s (%s): %d insns  %s  L3 miss %.2f%%  CPI %.3f\n"
            path
            (Sp_pinball.Pinball.describe pb)
            r.Sp_pinball.Replayer.retired
            (Format.asprintf "%a" Sp_pin.Mix.pp (Sp_pin.Ldstmix.mix mixt))
            (stats.Sp_cache.Hierarchy.l3.miss_rate *. 100.0)
            (Sp_cpu.Interval_core.cpi core);
          Some Sp_obs.Json.Null
        end
  in
  let run files json =
    let results = List.map (replay_one ~json) files in
    let ok = List.for_all Option.is_some results in
    if json then
      emit_json ~command:"replay" ~options:Api.no_options
        ~result:
          (Sp_obs.Json.Obj
             [
               ( "replays",
                 Sp_obs.Json.List (List.filter_map Fun.id results) );
             ]);
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay stored pinballs under the pintools.")
    Term.(const run $ files_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* exec *)

let exec_cmd =
  let file_arg =
    let doc = "Program text file (one instruction per line; # comments)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let fuel_arg =
    let doc = "Maximum instructions to execute." in
    Arg.(value & opt int 100_000_000 & info [ "fuel" ] ~docv:"N" ~doc)
  in
  let run file fuel =
    match Sp_vm.Progtext.load file with
    | Error e -> Printf.eprintf "%s: %s\n" file e; exit 1
    | Ok prog ->
        let mixt = Sp_pin.Ldstmix.create () in
        let cache =
          Sp_pin.Allcache_tool.create ~config:Sp_cache.Config.allcache_sim prog
        in
        let core =
          Sp_cpu.Interval_core.create ~config:Sp_cpu.Core_config.i7_3770_sim
            prog
        in
        let machine = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
        let r =
          Sp_pin.Pin.run
            ~tools:
              [
                Sp_pin.Ldstmix.hooks mixt;
                Sp_pin.Allcache_tool.hooks cache;
                Sp_cpu.Interval_core.hooks core;
              ]
            ~fuel prog machine
        in
        Printf.printf "%s: %s after %d instructions\n" file
          (match r.Sp_pin.Pin.status with
          | Sp_vm.Interp.Halted -> "halted"
          | Sp_vm.Interp.Out_of_fuel -> "out of fuel")
          r.Sp_pin.Pin.retired;
        Printf.printf "registers: %s\n"
          (String.concat " "
             (List.mapi
                (fun i v -> Printf.sprintf "r%d=%d" i v)
                (Array.to_list machine.Sp_vm.Interp.regs)));
        Printf.printf "mix: %s\n"
          (Format.asprintf "%a" Sp_pin.Mix.pp (Sp_pin.Ldstmix.mix mixt));
        let s = Sp_pin.Allcache_tool.stats cache in
        Printf.printf
          "caches: L1D %.2f%%  L2 %.2f%%  L3 %.2f%% miss;  CPI %.3f\n"
          (s.Sp_cache.Hierarchy.l1d.miss_rate *. 100.)
          (s.Sp_cache.Hierarchy.l2.miss_rate *. 100.)
          (s.Sp_cache.Hierarchy.l3.miss_rate *. 100.)
          (Sp_cpu.Interval_core.cpi core)
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Execute a hand-written program text file under the pintools.")
    Term.(const run $ file_arg $ fuel_arg)

(* ------------------------------------------------------------------ *)
(* disasm *)

let disasm_cmd =
  let run bench =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        let built = Sp_workloads.Benchspec.build ~slices_scale:0.01 spec in
        Format.printf "%a@." Sp_vm.Program.pp_listing
          built.Sp_workloads.Benchspec.program
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Print a benchmark's full disassembly with basic-block \
             boundaries.")
    Term.(const run $ bench_arg)

(* ------------------------------------------------------------------ *)
(* trace (instruction event stream, distinct from --trace-out spans) *)

let trace_cmd =
  let out_arg =
    let doc = "Output trace file." in
    Arg.(
      required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let limit_arg =
    let doc = "Maximum number of events to record." in
    Arg.(value & opt int 1_000_000 & info [ "limit"; "n" ] ~docv:"N" ~doc)
  in
  let run bench common out limit =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        let options = options_of common in
        let built =
          Sp_workloads.Benchspec.build
            ~slice_insns:options.Pipeline.slice_insns
            ~slices_scale:options.Pipeline.slices_scale spec
        in
        let oc = open_out_bin out in
        let w = Sp_pin.Trace_io.Writer.create ~limit oc in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            ignore
              (Sp_pin.Pin.run_fresh
                 ~tools:[ Sp_pin.Trace_io.Writer.hooks w ]
                 built.Sp_workloads.Benchspec.program));
        Printf.printf "%s: wrote %d events to %s%s\n"
          spec.Sp_workloads.Benchspec.name
          (Sp_pin.Trace_io.Writer.events_written w)
          out
          (if Sp_pin.Trace_io.Writer.truncated w then " (truncated)" else "")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Export a benchmark's instrumented event stream as a text trace.")
    Term.(const run $ bench_arg $ common_term $ out_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let run bench common json =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        with_trace common @@ fun () ->
        let options = options_of common in
        let r = Pipeline.run_benchmark ~options spec in
        if json then
          (* the complete envelope comes from Api.run_envelope — the
             exact code path the serve daemon replies with, so this
             output is byte-identical to a daemon submit reply *)
          print_endline (Sp_obs.Json.to_string (Api.run_envelope r))
        else begin
          Printf.printf "%s: %d points (paper %d), %d cover 90%% (paper %d)\n\n"
            spec.Sp_workloads.Benchspec.name
            (Array.length r.Pipeline.selection.points)
            spec.Sp_workloads.Benchspec.planted_phases
            (Pipeline.reduced_count r) spec.Sp_workloads.Benchspec.planted_n90;
          let show (s : Runstats.run_stats) =
            Printf.printf
              "%-22s %12.0f insns  %s\n\
               %-22s L1D %5.2f%%  L2 %5.2f%%  L3 %6.2f%%  CPI %.3f\n"
              s.Runstats.label s.Runstats.insns
              (Format.asprintf "%a" Sp_pin.Mix.pp s.Runstats.mix)
              ""
              (s.Runstats.l1d_miss *. 100.0)
              (s.Runstats.l2_miss *. 100.0)
              (s.Runstats.l3_miss *. 100.0)
              s.Runstats.cpi
          in
          show r.Pipeline.whole;
          show (Pipeline.regional r);
          show (Pipeline.reduced r);
          show (Pipeline.warmup_regional r);
          Printf.printf "\nnative (perf) CPI: %.3f\n"
            (Sp_perf.Perf_counters.cpi r.Pipeline.native)
        end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the full pipeline for one benchmark.")
    Term.(const run $ bench_arg $ common_term $ json_arg)

(* ------------------------------------------------------------------ *)
(* suite *)

let suite_cmd =
  let extended_arg =
    let doc = "Also run the 14 extended (non-Table II) workloads." in
    Arg.(value & flag & info [ "extended" ] ~doc)
  in
  let only_arg =
    let doc =
      "Comma-separated benchmark names: run only these (useful for smoke \
       tests and CI)."
    in
    Arg.(
      value
      & opt (some (list ~sep:',' string)) None
      & info [ "only" ] ~docv:"NAMES" ~doc)
  in
  let run common json extended only =
    let specs =
      match only with
      | Some names ->
          List.map
            (fun n ->
              match find_bench n with
              | Ok s -> s
              | Error e -> prerr_endline e; exit 1)
            names
      | None ->
          if extended then Sp_workloads.Suite.full else Sp_workloads.Suite.all
    in
    with_trace common @@ fun () ->
    let options = options_of common in
    let results = Pipeline.run_suite ~options ~specs () in
    if json then
      emit_json ~command:"suite" ~options:(Api.options_json options)
        ~result:
          (Sp_obs.Json.Obj
             [
               ( "results",
                 Sp_obs.Json.List (List.map bench_result_json results) );
               ("table2", table_json (Experiments.table2 results));
               ("metrics", metrics_json ());
             ])
    else begin
      Sp_util.Table.print (Experiments.table2 results);
      let t =
        Sp_util.Table.create ~title:"Headline claims"
          [
            ("Metric", Sp_util.Table.Left);
            ("Paper", Sp_util.Table.Right);
            ("Measured", Sp_util.Table.Right);
          ]
      in
      List.iter
        (fun (h : Experiments.headline) ->
          Sp_util.Table.add_row t [ h.metric; h.paper; h.measured ])
        (Experiments.headlines results);
      Sp_util.Table.print t
    end
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Run the pipeline over all 29 benchmarks and print Table II plus \
             the headline comparisons.")
    Term.(const run $ common_term $ json_arg $ extended_arg $ only_arg)

(* ------------------------------------------------------------------ *)
(* experiment *)

let experiment_cmd =
  let name_arg =
    let doc =
      "Experiment: table1, table3, fig3a, fig3b, ablation-bic, \
       ablation-proj, ablation-prefetch, sampling, samplers, statcache, \
       models, rate (suite-wide figures live in bench/main.exe)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let run name common json =
    let table =
      match name with
      | "table1" -> Some (fun () -> Experiments.table1 ())
      | "fig3a" -> Some (fun () -> Experiments.fig3a ~options:(options_of common) ())
      | "fig3b" -> Some (fun () -> Experiments.fig3b ~options:(options_of common) ())
      | "ablation-bic" ->
          Some (fun () -> Experiments.ablation_bic ~options:(options_of common) ())
      | "ablation-proj" ->
          Some
            (fun () -> Experiments.ablation_projection ~options:(options_of common) ())
      | "ablation-prefetch" ->
          Some
            (fun () -> Experiments.ablation_prefetch ~options:(options_of common) ())
      | "sampling" -> Some (fun () -> Experiments.sampling ~options:(options_of common) ())
      | "samplers" ->
          Some (fun () -> Experiments.samplers ~options:(options_of common) ())
      | "statcache" -> Some (fun () -> Experiments.statcache ~options:(options_of common) ())
      | "models" -> Some (fun () -> Experiments.models ~options:(options_of common) ())
      | "rate" -> Some (fun () -> Experiments.rate ~options:(options_of common) ())
      | _ -> None
    in
    match (name, table) with
    | "table3", _ ->
        with_trace common @@ fun () ->
        if json then
          emit_json ~command:"experiment"
            ~options:
              (Api.options_json ~extra:[ ("name", str name) ]
                 (options_of common))
            ~result:
              (Sp_obs.Json.Obj
                 [
                   ("name", str name);
                   ("text", str (Experiments.table3 ()));
                 ])
        else print_endline (Experiments.table3 ())
    | _, Some f ->
        with_trace common @@ fun () ->
        let t = f () in
        if json then
          emit_json ~command:"experiment"
            ~options:
              (Api.options_json ~extra:[ ("name", str name) ]
                 (options_of common))
            ~result:
              (Sp_obs.Json.Obj
                 [ ("name", str name); ("table", table_json t) ])
        else Sp_util.Table.print t
    | other, None ->
        Printf.eprintf
          "unknown experiment %S (suite-wide figures: use bench/main.exe)\n"
          other;
        exit 1
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a single-benchmark experiment.")
    Term.(const run $ name_arg $ common_term $ json_arg)

(* ------------------------------------------------------------------ *)
(* report: aggregate a --trace-out file *)

let report_cmd =
  let trace_arg =
    let doc = "Chrome trace-event file written by --trace-out." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let run trace json =
    match Sp_obs.Trace_report.of_file trace with
    | Error e ->
        Printf.eprintf "specrepro report: %s: %s\n" trace e;
        exit 1
    | Ok r ->
        if json then
          emit_json ~command:"report" ~options:Api.no_options
            ~result:
              (Sp_obs.Json.Obj
                 [
                   ("trace", str trace);
                   ("report", Sp_obs.Trace_report.to_json r);
                 ])
        else print_string (Sp_obs.Trace_report.render r)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Validate and summarise a span trace: per-stage, per-benchmark \
             and per-category totals.  Exits 1 if the trace is malformed or \
             has unbalanced spans.")
    Term.(const run $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* pinballs: inspect / verify / gc a store or cache directory *)

let pinballs_cmd =
  let dir_arg =
    let doc = "Pinball store or cache directory." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let describe_file path =
    match Sp_pinball.Store.load path with
    | Error e -> Error (Sp_pinball.Store.error_message e)
    | Ok pb ->
        let kind =
          match pb.Sp_pinball.Pinball.kind with
          | Sp_pinball.Pinball.Whole -> "whole"
          | Sp_pinball.Pinball.Region r -> Printf.sprintf "region %d" r.cluster
        in
        let length =
          match pb.Sp_pinball.Pinball.length with
          | Some l -> string_of_int l
          | None -> "to halt"
        in
        Ok (pb.Sp_pinball.Pinball.benchmark, kind, length)
  in
  let list_cmd =
    let run dir json =
      let files = Sp_pinball.Store.list_dir ~dir in
      let manifest = Sp_pinball.Artifact_cache.read_manifest ~dir in
      if json then
        emit_json ~command:"pinballs-list" ~options:Api.no_options
          ~result:
            (Sp_obs.Json.Obj
               [
                 ("dir", str dir);
                 ( "pinballs",
              Sp_obs.Json.List
                (List.map
                   (fun path ->
                     let size =
                       try (Unix.stat path).Unix.st_size
                       with Unix.Unix_error _ -> -1
                     in
                     let benchmark, kind, length, status =
                       match describe_file path with
                       | Ok (b, k, l) -> (b, k, l, "ok")
                       | Error e -> ("-", "-", "-", e)
                     in
                     Sp_obs.Json.Obj
                       [
                         ("file", str (Filename.basename path));
                         ("bytes", numi size);
                         ("benchmark", str benchmark);
                         ("kind", str kind);
                         ("length", str length);
                         ("status", str status);
                       ])
                   files) );
            ( "manifest",
              Sp_obs.Json.List
                (List.map
                   (fun (e : Sp_pinball.Artifact_cache.entry) ->
                     Sp_obs.Json.Obj
                       [
                         ("key", str e.key);
                         ("benchmark", str e.benchmark);
                         ("slice_insns", numi e.slice_insns);
                         ("scale", num e.slices_scale);
                         ("file", str e.file);
                       ])
                   manifest) );
               ])
      else begin
        let t =
          Sp_util.Table.create ~title:(Printf.sprintf "Pinballs under %s" dir)
            [
              ("File", Sp_util.Table.Left);
              ("Bytes", Sp_util.Table.Right);
              ("Benchmark", Sp_util.Table.Left);
              ("Kind", Sp_util.Table.Left);
              ("Length", Sp_util.Table.Right);
              ("Status", Sp_util.Table.Left);
            ]
        in
        List.iter
          (fun path ->
            let size =
              try string_of_int (Unix.stat path).Unix.st_size
              with Unix.Unix_error _ -> "?"
            in
            let benchmark, kind, length, status =
              match describe_file path with
              | Ok (b, k, l) -> (b, k, l, "ok")
              | Error e -> ("-", "-", "-", e)
            in
            Sp_util.Table.add_row t
              [ Filename.basename path; size; benchmark; kind; length; status ])
          files;
        Sp_util.Table.print t;
        if manifest <> [] then begin
          let m =
            Sp_util.Table.create ~title:"Cache manifest"
              [
                ("Key", Sp_util.Table.Left);
                ("Benchmark", Sp_util.Table.Left);
                ("Slice insns", Sp_util.Table.Right);
                ("Scale", Sp_util.Table.Right);
                ("File", Sp_util.Table.Left);
              ]
          in
          List.iter
            (fun (e : Sp_pinball.Artifact_cache.entry) ->
              Sp_util.Table.add_row m
                [
                  e.key;
                  e.benchmark;
                  string_of_int e.slice_insns;
                  Printf.sprintf "%g" e.slices_scale;
                  e.file;
                ])
            manifest;
          Sp_util.Table.print m
        end
      end
    in
    Cmd.v
      (Cmd.info "list"
         ~doc:"List the pinballs (and any cache manifest) in a directory.")
      Term.(const run $ dir_arg $ json_arg)
  in
  let verify_cmd =
    let run dir =
      let files = Sp_pinball.Store.list_dir ~dir in
      let bad =
        List.fold_left
          (fun bad path ->
            match Sp_pinball.Store.verify path with
            | Ok () ->
                Printf.printf "%s: ok\n" path;
                bad
            | Error e ->
                Printf.printf "%s\n" (Sp_pinball.Store.error_message e);
                bad + 1)
          0 files
      in
      Printf.printf "%d pinball(s), %d corrupt\n" (List.length files) bad;
      if bad > 0 then exit 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Fully validate every pinball in a directory (framing, \
               checksums, all fields); exits 1 if any is corrupt.")
      Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let run dir =
      let r = Sp_pinball.Artifact_cache.gc ~dir in
      Printf.printf
        "%s: kept %d pinball(s); removed %d corrupt, %d quarantined, %d \
         temporary; pruned %d manifest entr%s\n"
        dir r.Sp_pinball.Artifact_cache.kept r.removed_corrupt
        r.removed_quarantined r.removed_tmp r.manifest_pruned
        (if r.manifest_pruned = 1 then "y" else "ies")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Garbage-collect a directory: drop corrupt pinballs, \
               quarantined entries, stale temporaries and dead manifest \
               entries.  Valid pinballs are never touched.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "pinballs"
       ~doc:"Inspect, verify and garbage-collect a pinball store or cache \
             directory.")
    [ list_cmd; verify_cmd; gc_cmd ]

(* ------------------------------------------------------------------ *)
(* serve: the benchmark-as-a-service daemon *)

let socket_arg =
  let doc = "Unix-domain socket path the daemon listens on." in
  let env = Cmd.Env.info "SPECREPRO_SOCKET" ~doc:"Default for $(b,--socket)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc ~env)

let results_opt_arg =
  let doc =
    "Append-only results store file: every completed job's report, \
     fidelity metrics and sampler diagnostics are appended as a \
     checksummed record (inspect with $(b,specrepro query), gate with \
     $(b,specrepro bench-regress))."
  in
  Arg.(value & opt (some string) None & info [ "results" ] ~docv:"FILE" ~doc)

let results_req_arg =
  let doc = "Results store file written by $(b,specrepro serve --results)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "results" ] ~docv:"FILE" ~doc)

let serve_cmd =
  let queue_cap_arg =
    let doc =
      "Bound on queued (not yet running) jobs; a submit past the bound is \
       refused immediately with a $(b,backpressure) error instead of \
       buffering without limit."
    in
    Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-job timeout in seconds, measured from submission; an expired \
       job is answered with a $(b,timeout) error.  0 disables the limit."
    in
    Arg.(value & opt float 0.0 & info [ "job-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let run common socket results queue_cap job_timeout =
    if queue_cap < 1 then begin
      prerr_endline "specrepro serve: --queue-cap must be at least 1";
      exit 1
    end;
    with_trace common @@ fun () ->
    let base = options_of common in
    Sp_serve.Server.run
      {
        Sp_serve.Server.socket_path = socket;
        results_path = results;
        queue_capacity = queue_cap;
        parallel = base.Pipeline.jobs;
        job_timeout;
        base_options = base;
        quiet = common.quiet;
      }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the benchmark-as-a-service daemon: accept jobs over a \
          Unix-domain socket, schedule them across the domain pool with \
          fair per-client queueing, and append every result to the \
          results store.  SIGTERM drains gracefully: in-flight and queued \
          jobs finish and are answered, new submissions are refused.  \
          The shared options below become the defaults a request's \
          options object starts from; --jobs is the daemon's parallelism.")
    Term.(
      const run $ common_term $ socket_arg $ results_opt_arg $ queue_cap_arg
      $ timeout_arg)

(* ------------------------------------------------------------------ *)
(* submit: client for a running daemon *)

let submit_cmd =
  let bench_opt_arg =
    let doc = "Benchmark to submit (omit with --status or --shutdown)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)
  in
  let status_flag =
    let doc = "Ask the daemon for its status instead of submitting a job." in
    Arg.(value & flag & info [ "status" ] ~doc)
  in
  let shutdown_flag =
    let doc = "Ask the daemon to drain and exit instead of submitting." in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  let render_human reply =
    let member name json =
      Option.bind (Sp_obs.Json.member name json) Sp_obs.Json.to_str
    in
    let result =
      Option.value
        (Sp_obs.Json.member "result" reply)
        ~default:(Sp_obs.Json.Obj [])
    in
    match member "command" reply with
    | Some "error" ->
        let get name =
          Option.value (Option.bind (Sp_obs.Json.member name result)
             Sp_obs.Json.to_str) ~default:"?"
        in
        Printf.eprintf "specrepro submit: daemon error [%s]: %s\n"
          (get "code") (get "message");
        true
    | Some "run" ->
        let fget obj name =
          Option.bind (Sp_obs.Json.member name obj) Sp_obs.Json.to_float
        in
        let bench =
          Option.value
            (Option.bind (Sp_obs.Json.member "benchmark" result)
               Sp_obs.Json.to_str)
            ~default:"?"
        in
        let cpi label =
          match
            Option.bind (Sp_obs.Json.member label result) (fun s ->
                fget s "cpi")
          with
          | Some v -> Printf.sprintf "%.3f" v
          | None -> "?"
        in
        Printf.printf
          "%s: whole CPI %s, warm-regional CPI %s (%d points, %.2fs)\n"
          bench (cpi "whole") (cpi "warmup_regional")
          (int_of_float (Option.value (fget result "points") ~default:0.0))
          (Option.value (fget result "wall_seconds") ~default:0.0);
        false
    | Some cmd ->
        Printf.printf "%s: %s\n" cmd (Sp_obs.Json.to_string result);
        false
    | None ->
        Printf.eprintf "specrepro submit: unrecognised reply\n";
        true
  in
  let run bench common socket json status shutdown =
    let request =
      if status then Ok Sp_serve.Client.status
      else if shutdown then Ok Sp_serve.Client.shutdown
      else
        match bench with
        | None ->
            Error
              "specrepro submit: name a BENCHMARK (or pass --status / \
               --shutdown)"
        | Some b -> (
            match find_bench b with
            | Error e -> Error e
            | Ok spec ->
                Ok
                  (Sp_serve.Client.submit
                     ~benchmark:spec.Sp_workloads.Benchspec.name
                     (options_of common)))
    in
    match request with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok request -> (
        match Sp_serve.Client.connect socket with
        | Error e ->
            Printf.eprintf "specrepro submit: %s\n" e;
            exit 1
        | Ok client ->
            Fun.protect
              ~finally:(fun () -> Sp_serve.Client.close client)
              (fun () ->
                match Sp_serve.Client.request client request with
                | Error e ->
                    Printf.eprintf "specrepro submit: %s\n" e;
                    exit 1
                | Ok (raw, reply) ->
                    let is_error =
                      Option.bind (Sp_obs.Json.member "command" reply)
                        Sp_obs.Json.to_str
                      = Some "error"
                    in
                    if json then
                      (* the daemon's reply bytes, verbatim — printing
                         the raw payload (not a re-rendering) is what
                         makes this byte-identical to `run --json` *)
                      print_endline raw
                    else ignore (render_human reply);
                    if is_error then exit 1))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one benchmark job to a running $(b,specrepro serve) \
          daemon and wait for the reply, which with $(b,--json) is \
          printed byte-for-byte as received (identical to what \
          $(b,specrepro run --json) prints for the same options).  \
          Daemon-side errors (bad request, backpressure, timeout, \
          draining) exit 1.")
    Term.(
      const run $ bench_opt_arg $ common_term $ socket_arg $ json_arg
      $ status_flag $ shutdown_flag)

(* ------------------------------------------------------------------ *)
(* query: inspect the results store *)

let query_cmd =
  let bench_opt_arg =
    let doc = "Restrict to one benchmark's history." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)
  in
  let run bench results json =
    match Sp_serve.Results_store.read_file results with
    | Error msg ->
        Printf.eprintf "specrepro query: %s: %s\n" results msg;
        exit 1
    | Ok (all_records, tail) ->
        (match Sp_serve.Results_store.tail_message tail with
        | Some m -> Printf.eprintf "specrepro query: warning: %s: %s\n" results m
        | None -> ());
        let bench_name =
          match bench with
          | None -> None
          | Some b -> (
              match find_bench b with
              | Error e ->
                  prerr_endline e;
                  exit 1
              | Ok spec -> Some spec.Sp_workloads.Benchspec.name)
        in
        let records =
          match bench_name with
          | None -> all_records
          | Some b -> Sp_serve.Results_store.history all_records ~benchmark:b
        in
        if records = [] then begin
          Printf.eprintf "specrepro query: no stored runs%s in %s\n"
            (match bench_name with
            | Some b -> " for " ^ b
            | None -> "")
            results;
          exit 1
        end;
        if json then
          emit_json ~command:"query"
            ~options:
              (match bench_name with
              | Some b -> Sp_obs.Json.Obj [ ("benchmark", str b) ]
              | None -> Api.no_options)
            ~result:
              (Sp_obs.Json.Obj
                 [
                   ("store", str results);
                   ("runs", numi (List.length records));
                   ( "tail",
                     match Sp_serve.Results_store.tail_message tail with
                     | None -> str "clean"
                     | Some m -> str m );
                   ("records", Sp_obs.Json.List records);
                 ])
        else begin
          let t =
            Sp_util.Table.create
              ~title:(Printf.sprintf "Stored runs in %s" results)
              [
                ("Benchmark", Sp_util.Table.Left);
                ("Client", Sp_util.Table.Left);
                ("Points", Sp_util.Table.Right);
                ("CPI err%", Sp_util.Table.Right);
                ("L3 err%", Sp_util.Table.Right);
                ("Wall s", Sp_util.Table.Right);
              ]
          in
          let fmt record name =
            match Sp_serve.Results_store.metric record name with
            | Some v -> Printf.sprintf "%.3f" v
            | None -> "-"
          in
          List.iter
            (fun record ->
              let field name =
                Option.value
                  (Option.bind (Sp_obs.Json.member name record)
                     Sp_obs.Json.to_str)
                  ~default:"-"
              in
              let points =
                match
                  Option.bind (Sp_obs.Json.member "points" record)
                    Sp_obs.Json.to_float
                with
                | Some v -> Printf.sprintf "%.0f" v
                | None -> "-"
              in
              Sp_util.Table.add_row t
                [
                  field "benchmark";
                  field "client";
                  points;
                  fmt record "cpi_err_pct";
                  fmt record "l3_err_pct";
                  fmt record "wall_seconds";
                ])
            records;
          Sp_util.Table.print t
        end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "List the runs recorded in a daemon results store (optionally one \
          benchmark's history).  Warns about a torn or corrupt store tail; \
          exits 1 when the store is unreadable or has no matching runs.")
    Term.(const run $ bench_opt_arg $ results_req_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* bench-regress: gate the latest stored run against its history *)

let bench_regress_cmd =
  let metric_arg =
    let doc =
      "Metric to gate, by its name in the stored record's metrics object \
       (e.g. cpi_err_pct, l3_err_pct, warm_cpi, wall_seconds)."
    in
    Arg.(
      value & opt string "cpi_err_pct" & info [ "metric" ] ~docv:"NAME" ~doc)
  in
  let gate_arg =
    let doc =
      "Fail (exit 2) when latest/baseline exceeds this ratio, where the \
       baseline is the mean of all prior stored runs."
    in
    Arg.(value & opt float 1.25 & info [ "gate" ] ~docv:"RATIO" ~doc)
  in
  let run bench results metric gate json =
    match find_bench bench with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok spec -> (
        let benchmark = spec.Sp_workloads.Benchspec.name in
        match Sp_serve.Results_store.read_file results with
        | Error msg ->
            Printf.eprintf "specrepro bench-regress: %s: %s\n" results msg;
            exit 1
        | Ok (records, tail) -> (
            (match Sp_serve.Results_store.tail_message tail with
            | Some m ->
                Printf.eprintf "specrepro bench-regress: warning: %s: %s\n"
                  results m
            | None -> ());
            let options_json =
              Sp_obs.Json.Obj
                [
                  ("benchmark", str benchmark);
                  ("metric", str metric);
                  ("gate", num gate);
                ]
            in
            match
              Sp_serve.Regress.evaluate ~records ~benchmark ~metric ~gate
            with
            | Error msg ->
                Printf.eprintf "specrepro bench-regress: %s: %s\n" results
                  msg;
                exit 1
            | Ok None ->
                if json then
                  emit_json ~command:"bench-regress" ~options:options_json
                    ~result:
                      (Sp_obs.Json.Obj
                         [
                           ("runs", numi 1);
                           ("regressed", Sp_obs.Json.Bool false);
                           ("baseline", Sp_obs.Json.Null);
                         ])
                else
                  Printf.printf
                    "%s %s: first stored run — no baseline to regress \
                     against yet\n"
                    benchmark metric
            | Ok (Some v) ->
                if json then
                  emit_json ~command:"bench-regress" ~options:options_json
                    ~result:
                      (Sp_obs.Json.Obj
                         [
                           ("runs", numi v.Sp_serve.Regress.runs);
                           ("latest", num v.Sp_serve.Regress.latest);
                           ("baseline", num v.Sp_serve.Regress.baseline);
                           ("ratio", num v.Sp_serve.Regress.ratio);
                           ( "regressed",
                             Sp_obs.Json.Bool v.Sp_serve.Regress.regressed );
                         ])
                else
                  Printf.printf
                    "%s %s: latest %.4f vs baseline %.4f over %d runs \
                     (ratio %.3f, gate %.3f) — %s\n"
                    benchmark metric v.Sp_serve.Regress.latest
                    v.Sp_serve.Regress.baseline v.Sp_serve.Regress.runs
                    v.Sp_serve.Regress.ratio gate
                    (if v.Sp_serve.Regress.regressed then "REGRESSED"
                     else "ok");
                if v.Sp_serve.Regress.regressed then exit 2))
  in
  Cmd.v
    (Cmd.info "bench-regress"
       ~doc:
         "Compare a benchmark's latest stored run against the mean of its \
          history in the results store.  Exits 0 when within the gate (or \
          when only one run is stored), 1 on bad input or a corrupt \
          store, 2 when the metric regressed past the gate — wire it \
          into CI after a daemon soak.")
    Term.(
      const run $ bench_arg $ results_req_arg $ metric_arg $ gate_arg
      $ json_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "reproduction of 'Efficacy of Statistical Sampling on Contemporary \
     Workloads: The Case of SPEC CPU2017' (IISWC 2019)"
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "All subcommands follow one convention: $(b,0) success; $(b,1) \
         bad input or a corrupt artifact (unknown benchmark, malformed \
         trace, pinball or results store, unreachable daemon, \
         daemon-side request errors); $(b,2) a quality gate failed \
         ($(b,bench-regress) past its ratio gate).";
    ]
  in
  let info = Cmd.info "specrepro" ~version:"2.0.0" ~doc ~man in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            profile_cmd;
            simpoints_cmd;
            replay_cmd;
            pinballs_cmd;
            trace_cmd;
            disasm_cmd;
            exec_cmd;
            run_cmd;
            suite_cmd;
            experiment_cmd;
            report_cmd;
            serve_cmd;
            submit_cmd;
            query_cmd;
            bench_regress_cmd;
          ]))
