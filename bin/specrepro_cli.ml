(* The specrepro command-line interface.

   Subcommands mirror the stages of the paper's methodology:
     list        the synthetic SPEC CPU2017 suite
     profile     whole-run profiling of one benchmark
     simpoints   simulation-point selection (optionally saving pinballs)
     replay      replay stored pinballs under pintools
     run         the full pipeline for one benchmark
     suite       the full pipeline for the whole suite (Table II + headlines)
     experiment  regenerate one of the paper's tables/figures
     report      aggregate a --trace-out file into per-stage totals

   Pipeline-driving subcommands share one options surface (the [common]
   term group below): --scale, --quiet, --jobs, --sampler,
   --pinball-cache, --profile-cache, --warmup-insns, --slice-insns and
   --trace-out mean the same thing everywhere they appear.  Reporting
   subcommands all take --json and emit one schema ("specrepro/v1"). *)

open Cmdliner
open Specrepro

(* ------------------------------------------------------------------ *)
(* the shared options surface *)

type common = {
  scale : float;
  quiet : bool;
  jobs : int;
  sampler : Sp_simpoint.Sampler.kind;
  pinball_cache : string option;
  profile_cache : string option;
  warmup_insns : int option;
  slice_insns : int option;
  trace_out : string option;
}

let scale_arg =
  let doc =
    "Scale factor for the whole-run length (1.0 = the calibrated paper-like \
     length; tests and demos use less)."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let quiet_arg =
  let doc = "Suppress progress output." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel stages (suite fan-out, cold regional \
     replays, k-means, variance sweep).  1 runs fully sequentially; 0 picks \
     the hardware's recommended parallelism.  Any value produces identical \
     results — only wall-clock changes."
  in
  let env = Cmd.Env.info "SPECREPRO_JOBS" ~doc:"Default for $(b,--jobs)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc ~env)

let sampler_arg =
  let doc =
    "Simulation-point sampling methodology for the select stage: \
     $(b,simpoint) (k-means phase clustering with BIC-guided k, the \
     default), $(b,systematic) (periodic SMARTS-style design), \
     $(b,stratified) (two-phase stratified sampling with Neyman \
     allocation) or $(b,rss) (ranked-set sampling with repeated \
     subsampling).  Replay and warm-replay are sampler-agnostic."
  in
  let env = Cmd.Env.info "SPECREPRO_SAMPLER" ~doc:"Default for $(b,--sampler)." in
  Arg.(
    value
    & opt (enum Sp_simpoint.Sampler.kind_enum) Sp_simpoint.Sampler.Simpoint
    & info [ "sampler" ] ~docv:"SAMPLER" ~doc ~env)

let cache_arg =
  let doc =
    "Content-addressed pinball cache directory.  The whole pinball logged \
     for each (benchmark, slice length, scale) is stored under a digest key \
     and reused by later invocations instead of re-logging; corrupt or \
     stale entries are quarantined and recomputed.  Inspect the directory \
     with $(b,specrepro pinballs)."
  in
  let env =
    Cmd.Env.info "SPECREPRO_PINBALL_CACHE"
      ~doc:"Default for $(b,--pinball-cache)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "pinball-cache" ] ~docv:"DIR" ~doc ~env)

let profile_cache_arg =
  let doc =
    "Content-addressed profile-result cache directory.  The log+profile \
     stage's outputs (BBV slices, instruction mix, whole-run cache and \
     timing statistics) are stored keyed by (benchmark, slice length, \
     scale, warmup) and decoded by later invocations instead of replaying \
     the whole program under instrumentation; corrupt entries are \
     quarantined and recomputed.  Unless $(b,--pinball-cache) is also \
     given, the same directory caches the whole pinballs, so a fully-warm \
     re-run skips whole-program execution entirely."
  in
  let env =
    Cmd.Env.info "SPECREPRO_PROFILE_CACHE"
      ~doc:"Default for $(b,--profile-cache)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-cache" ] ~docv:"DIR" ~doc ~env)

let warmup_insns_arg =
  let doc =
    "Warmup window per simulation point, in simulated instructions: each \
     warm regional replay trains the caches and predictor on this many \
     instructions preceding the point (clamped to the previous point's \
     end) before measuring.  Default: 150000, sized against the scaled \
     L3 as the paper sizes its 500M-cycle warmup against the real one."
  in
  let env =
    Cmd.Env.info "SPECREPRO_WARMUP_INSNS"
      ~doc:"Default for $(b,--warmup-insns)."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "warmup-insns" ] ~docv:"N" ~doc ~env)

let slice_insns_arg =
  let doc =
    "Override the profiling slice length in simulated instructions \
     (default: the calibrated 30 paper-Minsn equivalent)."
  in
  Arg.(
    value & opt (some int) None & info [ "slice-insns" ] ~docv:"N" ~doc)

let trace_out_arg =
  let doc =
    "Record a span trace of the run and write it to $(docv) as Chrome \
     trace-event JSON (open in chrome://tracing or Perfetto, or summarise \
     with $(b,specrepro report))."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let common_term =
  let make scale quiet jobs sampler pinball_cache profile_cache warmup_insns
      slice_insns trace_out =
    {
      scale;
      quiet;
      jobs;
      sampler;
      pinball_cache;
      profile_cache;
      warmup_insns;
      slice_insns;
      trace_out;
    }
  in
  Term.(
    const make $ scale_arg $ quiet_arg $ jobs_arg $ sampler_arg $ cache_arg
    $ profile_cache_arg $ warmup_insns_arg $ slice_insns_arg $ trace_out_arg)

let resolve_jobs jobs = if jobs <= 0 then Sp_util.Pool.default_jobs () else jobs

let options_of c =
  let base = Pipeline.default_options in
  Pipeline.normalize
    {
      base with
      Pipeline.slices_scale = c.scale;
      sampler = c.sampler;
      slice_insns =
        Option.value ~default:base.Pipeline.slice_insns c.slice_insns;
      warmup_insns =
        Option.value ~default:base.Pipeline.warmup_insns c.warmup_insns;
      progress = not c.quiet;
      jobs = resolve_jobs c.jobs;
      pinball_cache = c.pinball_cache;
      profile_cache = c.profile_cache;
    }

(* Run [f] with span tracing enabled when --trace-out was given; the
   trace file is written even when [f] raises.  Argument validation
   (and its [exit 1]s) must happen before entering — [Stdlib.exit]
   does not unwind the stack, so it would skip the trace write. *)
let with_trace c f =
  match c.trace_out with
  | None -> f ()
  | Some path ->
      Sp_obs.Tracer.enable ();
      Fun.protect
        ~finally:(fun () ->
          Sp_obs.Tracer.write path;
          if not c.quiet then
            Sp_obs.Log.printf "wrote %d spans to %s\n"
              (Sp_obs.Tracer.span_count ()) path)
        f

let find_bench name =
  match Sp_workloads.Suite.find name with
  | spec -> Ok spec
  | exception Not_found ->
      Error
        (Printf.sprintf "unknown benchmark %S; try `specrepro list'" name)

let bench_arg =
  let doc = "Benchmark name (e.g. 505.mcf_r or mcf_r)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)

(* ------------------------------------------------------------------ *)
(* the --json reporting surface: one flag, one schema *)

let json_arg =
  let doc =
    "Emit machine-readable JSON (schema $(b,specrepro/v1)) on stdout \
     instead of the text report."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let emit_json ~command fields =
  print_endline
    (Sp_obs.Json.to_string
       (Sp_obs.Json.Obj
          (("schema", Sp_obs.Json.Str "specrepro/v1")
          :: ("command", Sp_obs.Json.Str command)
          :: fields)))

let num x = Sp_obs.Json.Num x
let str s = Sp_obs.Json.Str s
let numi i = Sp_obs.Json.Num (float_of_int i)

let mix_json (m : Sp_pin.Mix.t) =
  Sp_obs.Json.Obj
    [
      ("no_mem", num m.Sp_pin.Mix.no_mem);
      ("mem_r", num m.Sp_pin.Mix.mem_r);
      ("mem_w", num m.Sp_pin.Mix.mem_w);
      ("mem_rw", num m.Sp_pin.Mix.mem_rw);
    ]

let run_stats_json (s : Runstats.run_stats) =
  Sp_obs.Json.Obj
    [
      ("label", str s.Runstats.label);
      ("insns", num s.Runstats.insns);
      ("mix", mix_json s.Runstats.mix);
      ("l1i_miss", num s.Runstats.l1i_miss);
      ("l1d_miss", num s.Runstats.l1d_miss);
      ("l2_miss", num s.Runstats.l2_miss);
      ("l3_miss", num s.Runstats.l3_miss);
      ("cpi", num s.Runstats.cpi);
    ]

let bench_result_json (r : Pipeline.bench_result) =
  Sp_obs.Json.Obj
    [
      ("benchmark", str r.Pipeline.spec.Sp_workloads.Benchspec.name);
      ("whole_insns", numi r.Pipeline.whole_insns);
      ("points", numi (Array.length r.Pipeline.selection.Pipeline.points));
      ("reduced_points", numi (Pipeline.reduced_count r));
      ("whole", run_stats_json r.Pipeline.whole);
      ("regional", run_stats_json (Pipeline.regional r));
      ("reduced", run_stats_json (Pipeline.reduced r));
      ("warmup_regional", run_stats_json (Pipeline.warmup_regional r));
      ("native_cpi", num (Sp_perf.Perf_counters.cpi r.Pipeline.native));
      ("wall_seconds", num r.Pipeline.wall_seconds);
      ("report", Pipeline.run_report_to_json r.Pipeline.report);
    ]

let table_json t =
  Sp_obs.Json.Obj
    [
      ( "title",
        match Sp_util.Table.title t with
        | Some s -> str s
        | None -> Sp_obs.Json.Null );
      ( "columns",
        Sp_obs.Json.List (List.map str (Sp_util.Table.headers t)) );
      ( "rows",
        Sp_obs.Json.List
          (List.map
             (fun row -> Sp_obs.Json.List (List.map str row))
             (Sp_util.Table.rows t)) );
    ]

let metrics_json () = Sp_obs.Metrics.to_json (Sp_obs.Metrics.snapshot ())

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let run json =
    if json then
      emit_json ~command:"list"
        [
          ( "benchmarks",
            Sp_obs.Json.List
              (List.map
                 (fun (s : Sp_workloads.Benchspec.t) ->
                   Sp_obs.Json.Obj
                     [
                       ("name", str s.Sp_workloads.Benchspec.name);
                       ( "class",
                         str
                           (Sp_workloads.Benchspec.suite_class_name
                              s.Sp_workloads.Benchspec.suite_class) );
                       ( "paper_points",
                         numi s.Sp_workloads.Benchspec.planted_phases );
                       ("paper_n90", numi s.Sp_workloads.Benchspec.planted_n90);
                       ( "kernels",
                         Sp_obs.Json.List
                           (List.map
                              (fun (k : Sp_workloads.Kernel.t) ->
                                str k.Sp_workloads.Kernel.name)
                              s.Sp_workloads.Benchspec.palette) );
                     ])
                 Sp_workloads.Suite.all);
          );
        ]
    else begin
      let t =
        Sp_util.Table.create ~title:"Synthetic SPEC CPU2017 suite"
          [
            ("Benchmark", Sp_util.Table.Left);
            ("Class", Sp_util.Table.Left);
            ("Sim points (paper)", Sp_util.Table.Right);
            ("90th-pct (paper)", Sp_util.Table.Right);
            ("Kernels", Sp_util.Table.Left);
          ]
      in
      List.iter
        (fun (s : Sp_workloads.Benchspec.t) ->
          Sp_util.Table.add_row t
            [
              s.Sp_workloads.Benchspec.name;
              Sp_workloads.Benchspec.suite_class_name
                s.Sp_workloads.Benchspec.suite_class;
              string_of_int s.Sp_workloads.Benchspec.planted_phases;
              string_of_int s.Sp_workloads.Benchspec.planted_n90;
              String.concat ","
                (List.map
                   (fun (k : Sp_workloads.Kernel.t) ->
                     k.Sp_workloads.Kernel.name)
                   s.Sp_workloads.Benchspec.palette);
            ])
        Sp_workloads.Suite.all;
      Sp_util.Table.print t
    end
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the synthetic SPEC CPU2017 benchmarks.")
    Term.(const run $ json_arg)

(* ------------------------------------------------------------------ *)
(* profile *)

let profile_cmd =
  let run bench common json =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        with_trace common @@ fun () ->
        let options = options_of common in
        let profile = Pipeline.profile_for_sweep ~options spec in
        let w = profile.Pipeline.sweep_whole_stats in
        let imix = profile.Pipeline.sweep_imix in
        if json then
          emit_json ~command:"profile"
            [
              ("benchmark", str spec.Sp_workloads.Benchspec.name);
              ("slices", numi (Array.length profile.Pipeline.sweep_slices));
              ("whole", run_stats_json w);
              ( "imix",
                Sp_obs.Json.Obj
                  (Array.to_list
                     (Array.map (fun (name, c) -> (name, numi c)) imix)) );
            ]
        else begin
          Printf.printf "%s: %.0f instructions, %d slices\n"
            spec.Sp_workloads.Benchspec.name w.Runstats.insns
            (Array.length profile.Pipeline.sweep_slices);
          Printf.printf "instruction mix: %s\n"
            (Format.asprintf "%a" Sp_pin.Mix.pp w.Runstats.mix);
          Printf.printf "by kind:%s\n"
            (String.concat ""
               (List.filter_map
                  (fun (name, c) ->
                    if c = 0 then None
                    else Some (Printf.sprintf " %s=%d" name c))
                  (Array.to_list imix)));
          Printf.printf
            "cache miss rates (Table I hierarchy, capacity-scaled): L1D \
             %.2f%% L2 %.2f%% L3 %.2f%%\n"
            (w.Runstats.l1d_miss *. 100.0)
            (w.Runstats.l2_miss *. 100.0)
            (w.Runstats.l3_miss *. 100.0);
          Printf.printf "timing model CPI: %.3f\n" w.Runstats.cpi
        end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run one benchmark to completion under the profiling pintools.")
    Term.(const run $ bench_arg $ common_term $ json_arg)

(* ------------------------------------------------------------------ *)
(* simpoints *)

let simpoints_cmd =
  let out_arg =
    let doc = "Directory to save Whole and Regional Pinballs into." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR" ~doc)
  in
  let max_k_arg =
    let doc = "Maximum number of clusters (the paper uses 35)." in
    Arg.(value & opt int 35 & info [ "max-k" ] ~docv:"K" ~doc)
  in
  let run bench common json max_k out =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        with_trace common @@ fun () ->
        let options = options_of common in
        let options =
          {
            options with
            Pipeline.simpoint_config =
              { options.Pipeline.simpoint_config with max_k };
          }
        in
        let profile = Pipeline.profile_for_sweep ~options spec in
        let sel =
          Sp_simpoint.Sampler.select ~config:options.Pipeline.simpoint_config
            options.Pipeline.sampler ~slice_len:options.Pipeline.slice_insns
            profile.Pipeline.sweep_slices
        in
        if json then
          emit_json ~command:"simpoints"
            [
              ("benchmark", str spec.Sp_workloads.Benchspec.name);
              ( "sampler",
                str (Sp_simpoint.Sampler.name options.Pipeline.sampler) );
              ("chosen_k", numi sel.Sp_simpoint.Sampler.groups);
              ( "num_slices",
                numi (Array.length profile.Pipeline.sweep_slices) );
              ( "diagnostics",
                Sp_obs.Json.Obj
                  (List.map
                     (fun (k, v) -> (k, num v))
                     sel.Sp_simpoint.Sampler.diagnostics) );
              ( "points",
                Sp_obs.Json.List
                  (Array.to_list sel.Sp_simpoint.Sampler.points
                  |> List.map (fun (p : Sp_simpoint.Simpoints.point) ->
                         Sp_obs.Json.Obj
                           [
                             ("cluster", numi p.Sp_simpoint.Simpoints.cluster);
                             ("weight", num p.Sp_simpoint.Simpoints.weight);
                             ( "start_icount",
                               numi p.Sp_simpoint.Simpoints.start_icount );
                             ("length", numi p.Sp_simpoint.Simpoints.length);
                           ])) );
            ]
        else begin
          Printf.printf "%s: %d simulation points over %d slices (%s)\n"
            spec.Sp_workloads.Benchspec.name
            (Array.length sel.Sp_simpoint.Sampler.points)
            (Array.length profile.Pipeline.sweep_slices)
            (Sp_simpoint.Sampler.name options.Pipeline.sampler);
          Array.iter
            (fun p ->
              Printf.printf "  %s\n"
                (Format.asprintf "%a" Sp_simpoint.Simpoints.pp_point p))
            sel.Sp_simpoint.Sampler.points
        end;
        match out with
        | None -> ()
        | Some dir ->
            let saved = ref 1 in
            ignore
              (Sp_pinball.Store.save ~dir
                 profile.Pipeline.sweep_whole.Sp_pinball.Logger.pinball);
            Sp_pinball.Logger.scan_regions profile.Pipeline.sweep_whole
              sel.Sp_simpoint.Sampler.points (fun pb ->
                ignore (Sp_pinball.Store.save ~dir pb);
                incr saved);
            if not json then
              Printf.printf "saved %d pinballs under %s\n" !saved dir
  in
  Cmd.v
    (Cmd.info "simpoints"
       ~doc:"Select simulation points for a benchmark (optionally saving \
             pinballs).")
    Term.(
      const run $ bench_arg $ common_term $ json_arg $ max_k_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* replay *)

let replay_cmd =
  let files_arg =
    let doc = "Pinball files (.pb) to replay." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"PINBALL" ~doc)
  in
  let replay_one ~json path =
    match Sp_pinball.Store.load path with
    | Error e ->
        Printf.eprintf "specrepro replay: %s\n"
          (Sp_pinball.Store.error_message e);
        None
    | Ok pb ->
        let prog = pb.Sp_pinball.Pinball.program in
        let mixt = Sp_pin.Ldstmix.create () in
        let cache =
          Sp_pin.Allcache_tool.create ~config:Sp_cache.Config.allcache_sim prog
        in
        let core =
          Sp_cpu.Interval_core.create ~config:Sp_cpu.Core_config.i7_3770_sim
            prog
        in
        let r =
          Sp_pinball.Replayer.replay
            ~tools:
              [
                Sp_pin.Ldstmix.hooks mixt;
                Sp_pin.Allcache_tool.hooks cache;
                Sp_cpu.Interval_core.hooks core;
              ]
            pb
        in
        let stats = Sp_pin.Allcache_tool.stats cache in
        if json then
          Some
            (Sp_obs.Json.Obj
               [
                 ("file", str path);
                 ("pinball", str (Sp_pinball.Pinball.describe pb));
                 ("retired", numi r.Sp_pinball.Replayer.retired);
                 ("mix", mix_json (Sp_pin.Ldstmix.mix mixt));
                 ("l3_miss", num stats.Sp_cache.Hierarchy.l3.miss_rate);
                 ("cpi", num (Sp_cpu.Interval_core.cpi core));
               ])
        else begin
          Printf.printf "%s (%s): %d insns  %s  L3 miss %.2f%%  CPI %.3f\n"
            path
            (Sp_pinball.Pinball.describe pb)
            r.Sp_pinball.Replayer.retired
            (Format.asprintf "%a" Sp_pin.Mix.pp (Sp_pin.Ldstmix.mix mixt))
            (stats.Sp_cache.Hierarchy.l3.miss_rate *. 100.0)
            (Sp_cpu.Interval_core.cpi core);
          Some Sp_obs.Json.Null
        end
  in
  let run files json =
    let results = List.map (replay_one ~json) files in
    let ok = List.for_all Option.is_some results in
    if json then
      emit_json ~command:"replay"
        [ ("replays", Sp_obs.Json.List (List.filter_map Fun.id results)) ];
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay stored pinballs under the pintools.")
    Term.(const run $ files_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* exec *)

let exec_cmd =
  let file_arg =
    let doc = "Program text file (one instruction per line; # comments)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let fuel_arg =
    let doc = "Maximum instructions to execute." in
    Arg.(value & opt int 100_000_000 & info [ "fuel" ] ~docv:"N" ~doc)
  in
  let run file fuel =
    match Sp_vm.Progtext.load file with
    | Error e -> Printf.eprintf "%s: %s\n" file e; exit 1
    | Ok prog ->
        let mixt = Sp_pin.Ldstmix.create () in
        let cache =
          Sp_pin.Allcache_tool.create ~config:Sp_cache.Config.allcache_sim prog
        in
        let core =
          Sp_cpu.Interval_core.create ~config:Sp_cpu.Core_config.i7_3770_sim
            prog
        in
        let machine = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
        let r =
          Sp_pin.Pin.run
            ~tools:
              [
                Sp_pin.Ldstmix.hooks mixt;
                Sp_pin.Allcache_tool.hooks cache;
                Sp_cpu.Interval_core.hooks core;
              ]
            ~fuel prog machine
        in
        Printf.printf "%s: %s after %d instructions\n" file
          (match r.Sp_pin.Pin.status with
          | Sp_vm.Interp.Halted -> "halted"
          | Sp_vm.Interp.Out_of_fuel -> "out of fuel")
          r.Sp_pin.Pin.retired;
        Printf.printf "registers: %s\n"
          (String.concat " "
             (List.mapi
                (fun i v -> Printf.sprintf "r%d=%d" i v)
                (Array.to_list machine.Sp_vm.Interp.regs)));
        Printf.printf "mix: %s\n"
          (Format.asprintf "%a" Sp_pin.Mix.pp (Sp_pin.Ldstmix.mix mixt));
        let s = Sp_pin.Allcache_tool.stats cache in
        Printf.printf
          "caches: L1D %.2f%%  L2 %.2f%%  L3 %.2f%% miss;  CPI %.3f\n"
          (s.Sp_cache.Hierarchy.l1d.miss_rate *. 100.)
          (s.Sp_cache.Hierarchy.l2.miss_rate *. 100.)
          (s.Sp_cache.Hierarchy.l3.miss_rate *. 100.)
          (Sp_cpu.Interval_core.cpi core)
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Execute a hand-written program text file under the pintools.")
    Term.(const run $ file_arg $ fuel_arg)

(* ------------------------------------------------------------------ *)
(* disasm *)

let disasm_cmd =
  let run bench =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        let built = Sp_workloads.Benchspec.build ~slices_scale:0.01 spec in
        Format.printf "%a@." Sp_vm.Program.pp_listing
          built.Sp_workloads.Benchspec.program
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Print a benchmark's full disassembly with basic-block \
             boundaries.")
    Term.(const run $ bench_arg)

(* ------------------------------------------------------------------ *)
(* trace (instruction event stream, distinct from --trace-out spans) *)

let trace_cmd =
  let out_arg =
    let doc = "Output trace file." in
    Arg.(
      required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let limit_arg =
    let doc = "Maximum number of events to record." in
    Arg.(value & opt int 1_000_000 & info [ "limit"; "n" ] ~docv:"N" ~doc)
  in
  let run bench common out limit =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        let options = options_of common in
        let built =
          Sp_workloads.Benchspec.build
            ~slice_insns:options.Pipeline.slice_insns
            ~slices_scale:options.Pipeline.slices_scale spec
        in
        let oc = open_out_bin out in
        let w = Sp_pin.Trace_io.Writer.create ~limit oc in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            ignore
              (Sp_pin.Pin.run_fresh
                 ~tools:[ Sp_pin.Trace_io.Writer.hooks w ]
                 built.Sp_workloads.Benchspec.program));
        Printf.printf "%s: wrote %d events to %s%s\n"
          spec.Sp_workloads.Benchspec.name
          (Sp_pin.Trace_io.Writer.events_written w)
          out
          (if Sp_pin.Trace_io.Writer.truncated w then " (truncated)" else "")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Export a benchmark's instrumented event stream as a text trace.")
    Term.(const run $ bench_arg $ common_term $ out_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let run bench common json =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        with_trace common @@ fun () ->
        let options = options_of common in
        let r = Pipeline.run_benchmark ~options spec in
        if json then
          emit_json ~command:"run"
            [ ("result", bench_result_json r); ("metrics", metrics_json ()) ]
        else begin
          Printf.printf "%s: %d points (paper %d), %d cover 90%% (paper %d)\n\n"
            spec.Sp_workloads.Benchspec.name
            (Array.length r.Pipeline.selection.points)
            spec.Sp_workloads.Benchspec.planted_phases
            (Pipeline.reduced_count r) spec.Sp_workloads.Benchspec.planted_n90;
          let show (s : Runstats.run_stats) =
            Printf.printf
              "%-22s %12.0f insns  %s\n\
               %-22s L1D %5.2f%%  L2 %5.2f%%  L3 %6.2f%%  CPI %.3f\n"
              s.Runstats.label s.Runstats.insns
              (Format.asprintf "%a" Sp_pin.Mix.pp s.Runstats.mix)
              ""
              (s.Runstats.l1d_miss *. 100.0)
              (s.Runstats.l2_miss *. 100.0)
              (s.Runstats.l3_miss *. 100.0)
              s.Runstats.cpi
          in
          show r.Pipeline.whole;
          show (Pipeline.regional r);
          show (Pipeline.reduced r);
          show (Pipeline.warmup_regional r);
          Printf.printf "\nnative (perf) CPI: %.3f\n"
            (Sp_perf.Perf_counters.cpi r.Pipeline.native)
        end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the full pipeline for one benchmark.")
    Term.(const run $ bench_arg $ common_term $ json_arg)

(* ------------------------------------------------------------------ *)
(* suite *)

let suite_cmd =
  let extended_arg =
    let doc = "Also run the 14 extended (non-Table II) workloads." in
    Arg.(value & flag & info [ "extended" ] ~doc)
  in
  let only_arg =
    let doc =
      "Comma-separated benchmark names: run only these (useful for smoke \
       tests and CI)."
    in
    Arg.(
      value
      & opt (some (list ~sep:',' string)) None
      & info [ "only" ] ~docv:"NAMES" ~doc)
  in
  let run common json extended only =
    let specs =
      match only with
      | Some names ->
          List.map
            (fun n ->
              match find_bench n with
              | Ok s -> s
              | Error e -> prerr_endline e; exit 1)
            names
      | None ->
          if extended then Sp_workloads.Suite.full else Sp_workloads.Suite.all
    in
    with_trace common @@ fun () ->
    let options = options_of common in
    let results = Pipeline.run_suite ~options ~specs () in
    if json then
      emit_json ~command:"suite"
        [
          ( "results",
            Sp_obs.Json.List (List.map bench_result_json results) );
          ("table2", table_json (Experiments.table2 results));
          ("metrics", metrics_json ());
        ]
    else begin
      Sp_util.Table.print (Experiments.table2 results);
      let t =
        Sp_util.Table.create ~title:"Headline claims"
          [
            ("Metric", Sp_util.Table.Left);
            ("Paper", Sp_util.Table.Right);
            ("Measured", Sp_util.Table.Right);
          ]
      in
      List.iter
        (fun (h : Experiments.headline) ->
          Sp_util.Table.add_row t [ h.metric; h.paper; h.measured ])
        (Experiments.headlines results);
      Sp_util.Table.print t
    end
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Run the pipeline over all 29 benchmarks and print Table II plus \
             the headline comparisons.")
    Term.(const run $ common_term $ json_arg $ extended_arg $ only_arg)

(* ------------------------------------------------------------------ *)
(* experiment *)

let experiment_cmd =
  let name_arg =
    let doc =
      "Experiment: table1, table3, fig3a, fig3b, ablation-bic, \
       ablation-proj, ablation-prefetch, sampling, samplers, statcache, \
       models, rate (suite-wide figures live in bench/main.exe)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let run name common json =
    let table =
      match name with
      | "table1" -> Some (fun () -> Experiments.table1 ())
      | "fig3a" -> Some (fun () -> Experiments.fig3a ~options:(options_of common) ())
      | "fig3b" -> Some (fun () -> Experiments.fig3b ~options:(options_of common) ())
      | "ablation-bic" ->
          Some (fun () -> Experiments.ablation_bic ~options:(options_of common) ())
      | "ablation-proj" ->
          Some
            (fun () -> Experiments.ablation_projection ~options:(options_of common) ())
      | "ablation-prefetch" ->
          Some
            (fun () -> Experiments.ablation_prefetch ~options:(options_of common) ())
      | "sampling" -> Some (fun () -> Experiments.sampling ~options:(options_of common) ())
      | "samplers" ->
          Some (fun () -> Experiments.samplers ~options:(options_of common) ())
      | "statcache" -> Some (fun () -> Experiments.statcache ~options:(options_of common) ())
      | "models" -> Some (fun () -> Experiments.models ~options:(options_of common) ())
      | "rate" -> Some (fun () -> Experiments.rate ~options:(options_of common) ())
      | _ -> None
    in
    match (name, table) with
    | "table3", _ ->
        with_trace common @@ fun () ->
        if json then
          emit_json ~command:"experiment"
            [ ("name", str name); ("text", str (Experiments.table3 ())) ]
        else print_endline (Experiments.table3 ())
    | _, Some f ->
        with_trace common @@ fun () ->
        let t = f () in
        if json then
          emit_json ~command:"experiment"
            [ ("name", str name); ("table", table_json t) ]
        else Sp_util.Table.print t
    | other, None ->
        Printf.eprintf
          "unknown experiment %S (suite-wide figures: use bench/main.exe)\n"
          other;
        exit 1
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a single-benchmark experiment.")
    Term.(const run $ name_arg $ common_term $ json_arg)

(* ------------------------------------------------------------------ *)
(* report: aggregate a --trace-out file *)

let report_cmd =
  let trace_arg =
    let doc = "Chrome trace-event file written by --trace-out." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let run trace json =
    match Sp_obs.Trace_report.of_file trace with
    | Error e ->
        Printf.eprintf "specrepro report: %s: %s\n" trace e;
        exit 1
    | Ok r ->
        if json then
          emit_json ~command:"report"
            [ ("trace", str trace); ("report", Sp_obs.Trace_report.to_json r) ]
        else print_string (Sp_obs.Trace_report.render r)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Validate and summarise a span trace: per-stage, per-benchmark \
             and per-category totals.  Exits 1 if the trace is malformed or \
             has unbalanced spans.")
    Term.(const run $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* pinballs: inspect / verify / gc a store or cache directory *)

let pinballs_cmd =
  let dir_arg =
    let doc = "Pinball store or cache directory." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let describe_file path =
    match Sp_pinball.Store.load path with
    | Error e -> Error (Sp_pinball.Store.error_message e)
    | Ok pb ->
        let kind =
          match pb.Sp_pinball.Pinball.kind with
          | Sp_pinball.Pinball.Whole -> "whole"
          | Sp_pinball.Pinball.Region r -> Printf.sprintf "region %d" r.cluster
        in
        let length =
          match pb.Sp_pinball.Pinball.length with
          | Some l -> string_of_int l
          | None -> "to halt"
        in
        Ok (pb.Sp_pinball.Pinball.benchmark, kind, length)
  in
  let list_cmd =
    let run dir json =
      let files = Sp_pinball.Store.list_dir ~dir in
      let manifest = Sp_pinball.Artifact_cache.read_manifest ~dir in
      if json then
        emit_json ~command:"pinballs-list"
          [
            ("dir", str dir);
            ( "pinballs",
              Sp_obs.Json.List
                (List.map
                   (fun path ->
                     let size =
                       try (Unix.stat path).Unix.st_size
                       with Unix.Unix_error _ -> -1
                     in
                     let benchmark, kind, length, status =
                       match describe_file path with
                       | Ok (b, k, l) -> (b, k, l, "ok")
                       | Error e -> ("-", "-", "-", e)
                     in
                     Sp_obs.Json.Obj
                       [
                         ("file", str (Filename.basename path));
                         ("bytes", numi size);
                         ("benchmark", str benchmark);
                         ("kind", str kind);
                         ("length", str length);
                         ("status", str status);
                       ])
                   files) );
            ( "manifest",
              Sp_obs.Json.List
                (List.map
                   (fun (e : Sp_pinball.Artifact_cache.entry) ->
                     Sp_obs.Json.Obj
                       [
                         ("key", str e.key);
                         ("benchmark", str e.benchmark);
                         ("slice_insns", numi e.slice_insns);
                         ("scale", num e.slices_scale);
                         ("file", str e.file);
                       ])
                   manifest) );
          ]
      else begin
        let t =
          Sp_util.Table.create ~title:(Printf.sprintf "Pinballs under %s" dir)
            [
              ("File", Sp_util.Table.Left);
              ("Bytes", Sp_util.Table.Right);
              ("Benchmark", Sp_util.Table.Left);
              ("Kind", Sp_util.Table.Left);
              ("Length", Sp_util.Table.Right);
              ("Status", Sp_util.Table.Left);
            ]
        in
        List.iter
          (fun path ->
            let size =
              try string_of_int (Unix.stat path).Unix.st_size
              with Unix.Unix_error _ -> "?"
            in
            let benchmark, kind, length, status =
              match describe_file path with
              | Ok (b, k, l) -> (b, k, l, "ok")
              | Error e -> ("-", "-", "-", e)
            in
            Sp_util.Table.add_row t
              [ Filename.basename path; size; benchmark; kind; length; status ])
          files;
        Sp_util.Table.print t;
        if manifest <> [] then begin
          let m =
            Sp_util.Table.create ~title:"Cache manifest"
              [
                ("Key", Sp_util.Table.Left);
                ("Benchmark", Sp_util.Table.Left);
                ("Slice insns", Sp_util.Table.Right);
                ("Scale", Sp_util.Table.Right);
                ("File", Sp_util.Table.Left);
              ]
          in
          List.iter
            (fun (e : Sp_pinball.Artifact_cache.entry) ->
              Sp_util.Table.add_row m
                [
                  e.key;
                  e.benchmark;
                  string_of_int e.slice_insns;
                  Printf.sprintf "%g" e.slices_scale;
                  e.file;
                ])
            manifest;
          Sp_util.Table.print m
        end
      end
    in
    Cmd.v
      (Cmd.info "list"
         ~doc:"List the pinballs (and any cache manifest) in a directory.")
      Term.(const run $ dir_arg $ json_arg)
  in
  let verify_cmd =
    let run dir =
      let files = Sp_pinball.Store.list_dir ~dir in
      let bad =
        List.fold_left
          (fun bad path ->
            match Sp_pinball.Store.verify path with
            | Ok () ->
                Printf.printf "%s: ok\n" path;
                bad
            | Error e ->
                Printf.printf "%s\n" (Sp_pinball.Store.error_message e);
                bad + 1)
          0 files
      in
      Printf.printf "%d pinball(s), %d corrupt\n" (List.length files) bad;
      if bad > 0 then exit 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Fully validate every pinball in a directory (framing, \
               checksums, all fields); exits 1 if any is corrupt.")
      Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let run dir =
      let r = Sp_pinball.Artifact_cache.gc ~dir in
      Printf.printf
        "%s: kept %d pinball(s); removed %d corrupt, %d quarantined, %d \
         temporary; pruned %d manifest entr%s\n"
        dir r.Sp_pinball.Artifact_cache.kept r.removed_corrupt
        r.removed_quarantined r.removed_tmp r.manifest_pruned
        (if r.manifest_pruned = 1 then "y" else "ies")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Garbage-collect a directory: drop corrupt pinballs, \
               quarantined entries, stale temporaries and dead manifest \
               entries.  Valid pinballs are never touched.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "pinballs"
       ~doc:"Inspect, verify and garbage-collect a pinball store or cache \
             directory.")
    [ list_cmd; verify_cmd; gc_cmd ]

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "reproduction of 'Efficacy of Statistical Sampling on Contemporary \
     Workloads: The Case of SPEC CPU2017' (IISWC 2019)"
  in
  let info = Cmd.info "specrepro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            profile_cmd;
            simpoints_cmd;
            replay_cmd;
            pinballs_cmd;
            trace_cmd;
            disasm_cmd;
            exec_cmd;
            run_cmd;
            suite_cmd;
            experiment_cmd;
            report_cmd;
          ]))
