(* Tests for Sp_simpoint: projection, k-means, BIC, selection,
   aggregation, variance. *)

open Sp_simpoint

let mk_slice index start length bbv =
  { Sp_pin.Bbv_tool.index; start_icount = start; length; bbv }

(* synthetic slices with [k] planted phases: phase p uses blocks
   [10p .. 10p+2]; [per_phase] slices each, laid out round-robin *)
let planted_slices ?(noise = 0) ~phases ~per_phase () =
  let rng = Sp_util.Rng.create 17 in
  let n = phases * per_phase in
  Array.init n (fun i ->
      let p = i mod phases in
      let jitter b = max 1 (b + if noise = 0 then 0 else Sp_util.Rng.int rng noise) in
      mk_slice i (i * 100) 100
        [|
          ((10 * p), jitter 60);
          ((10 * p) + 1, jitter 30);
          ((10 * p) + 2, jitter 10);
        |])

(* ------------------------------------------------------------------ *)
(* Projection *)

let test_projection_deterministic () =
  let slices = planted_slices ~phases:3 ~per_phase:5 () in
  let a = Projection.project ~seed:1 slices in
  let b = Projection.project ~seed:1 slices in
  Alcotest.(check bool) "same" true (a = b);
  let c = Projection.project ~seed:2 slices in
  Alcotest.(check bool) "seed matters" true (a <> c)

let test_projection_dim () =
  let slices = planted_slices ~phases:2 ~per_phase:2 () in
  let p = Projection.project ~dim:7 ~seed:1 slices in
  Array.iter (fun v -> Alcotest.(check int) "dim" 7 (Array.length v)) p

let test_projection_scale_invariant () =
  (* two slices with proportional BBVs project to the same point
     (BBVs are L1-normalised) *)
  let s1 = mk_slice 0 0 100 [| (1, 50); (2, 50) |] in
  let s2 = mk_slice 1 100 200 [| (1, 100); (2, 100) |] in
  let p = Projection.project ~seed:3 [| s1; s2 |] in
  Array.iteri
    (fun d x -> Alcotest.(check (float 1e-12)) (string_of_int d) x p.(1).(d))
    p.(0)

let test_matrix_entry_range () =
  for b = 0 to 50 do
    for d = 0 to 14 do
      let x = Projection.matrix_entry ~seed:9 ~block:b ~dim:d in
      Alcotest.(check bool) "in [-1,1]" true (x >= -1.0 && x <= 1.0)
    done
  done

(* ------------------------------------------------------------------ *)
(* Kmeans *)

let blob_points ~k ~per ~spread =
  let rng = Sp_util.Rng.create 5 in
  Array.init (k * per) (fun i ->
      let c = i mod k in
      Array.init 4 (fun d ->
          (float_of_int c *. 10.0 *. float_of_int (d + 1))
          +. Sp_util.Rng.gaussian rng ~mu:0.0 ~sigma:spread))

let test_kmeans_k1 () =
  let points = [| [| 0.0; 0.0 |]; [| 2.0; 4.0 |]; [| 4.0; 2.0 |] |] in
  let r = Kmeans.fit ~k:1 points in
  Alcotest.(check (float 1e-9)) "centroid x" 2.0 r.Kmeans.centroids.(0).(0);
  Alcotest.(check (float 1e-9)) "centroid y" 2.0 r.Kmeans.centroids.(0).(1);
  Alcotest.(check int) "all assigned" 3 r.Kmeans.sizes.(0)

let test_kmeans_separated_blobs () =
  let points = blob_points ~k:3 ~per:30 ~spread:0.01 in
  let r = Kmeans.fit ~k:3 points in
  (* members of the same blob share a cluster *)
  for i = 0 to 89 do
    Alcotest.(check int)
      (Printf.sprintf "point %d" i)
      r.Kmeans.assignment.(i mod 3)
      r.Kmeans.assignment.(i)
  done;
  Alcotest.(check bool) "tiny distortion" true (r.Kmeans.distortion < 1.0)

let test_kmeans_sizes_sum () =
  let points = blob_points ~k:4 ~per:10 ~spread:1.0 in
  let r = Kmeans.fit ~k:5 points in
  Alcotest.(check int) "sizes sum to n" 40 (Array.fold_left ( + ) 0 r.Kmeans.sizes)

let test_kmeans_k_clamped () =
  let points = [| [| 1.0 |]; [| 2.0 |] |] in
  let r = Kmeans.fit ~k:10 points in
  Alcotest.(check int) "k clamped" 2 r.Kmeans.k

let prop_assign_nearest =
  QCheck.Test.make ~name:"assignment is nearest centroid" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Sp_util.Rng.create seed in
      let points =
        Array.init 40 (fun _ -> Array.init 3 (fun _ -> Sp_util.Rng.float rng 10.0))
      in
      let r = Kmeans.fit ~seed ~k:4 points in
      Array.for_all
        (fun i ->
          let d_assigned =
            Kmeans.sq_distance points.(i) r.Kmeans.centroids.(r.Kmeans.assignment.(i))
          in
          Array.for_all
            (fun c -> Kmeans.sq_distance points.(i) c >= d_assigned -. 1e-9)
            r.Kmeans.centroids)
        (Array.init 40 (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Bic *)

let test_bic_prefers_true_k () =
  let points = blob_points ~k:3 ~per:50 ~spread:0.05 in
  let score k = Bic.score (Kmeans.fit ~k points) points in
  Alcotest.(check bool) "k=3 beats k=1" true (score 3 > score 1);
  Alcotest.(check bool) "k=3 beats k=2" true (score 3 > score 2)

let test_pick_k () =
  Alcotest.(check int) "threshold 0.9"
    3
    (Bic.pick_k ~threshold:0.9 [ (1, 0.0); (2, 50.0); (3, 95.0); (4, 100.0) ]);
  Alcotest.(check int) "threshold 0.4"
    2
    (Bic.pick_k ~threshold:0.4 [ (1, 0.0); (2, 50.0); (3, 95.0); (4, 100.0) ]);
  Alcotest.(check int) "flat curve -> smallest"
    1
    (Bic.pick_k ~threshold:0.9 [ (3, 5.0); (1, 5.0); (2, 5.0) ])

(* ------------------------------------------------------------------ *)
(* Simpoints *)

let test_select_recovers_phases () =
  let slices = planted_slices ~phases:4 ~per_phase:50 ~noise:3 () in
  let sel = Simpoints.select ~slice_len:100 slices in
  Alcotest.(check bool)
    (Printf.sprintf "k=%d close to 4" sel.Simpoints.chosen_k)
    true
    (sel.Simpoints.chosen_k >= 4 && sel.Simpoints.chosen_k <= 6);
  (* weights sum to 1 *)
  Alcotest.(check (float 1e-9)) "weights" 1.0
    (Simpoints.total_weight sel.Simpoints.points);
  (* representatives belong to their clusters *)
  Array.iter
    (fun (p : Simpoints.point) ->
      Alcotest.(check int) "rep in cluster" p.cluster
        sel.Simpoints.assignment.(p.slice_index))
    sel.Simpoints.points

let test_select_with_k () =
  let slices = planted_slices ~phases:3 ~per_phase:20 () in
  let sel = Simpoints.select_with_k ~slice_len:100 ~k:2 slices in
  Alcotest.(check int) "forced k" 2 sel.Simpoints.chosen_k

let test_reduce () =
  let slices = planted_slices ~phases:5 ~per_phase:20 ~noise:2 () in
  let sel = Simpoints.select_with_k ~slice_len:100 ~k:5 slices in
  let reduced = Simpoints.reduce sel ~coverage:0.9 in
  let w = Simpoints.total_weight reduced in
  Alcotest.(check bool) "covers 90%" true (w >= 0.9);
  (* minimality: dropping the last (smallest) kept point goes below 0.9 *)
  let sorted = Array.copy reduced in
  Array.sort (fun (a : Simpoints.point) b -> compare a.weight b.weight) sorted;
  Alcotest.(check bool) "minimal" true
    (w -. sorted.(0).Simpoints.weight < 0.9);
  (* sorted by descending weight *)
  let ws = Array.map (fun (p : Simpoints.point) -> p.weight) reduced in
  let sorted_desc = Array.copy ws in
  Array.sort (fun a b -> compare b a) sorted_desc;
  Alcotest.(check bool) "descending" true (ws = sorted_desc)

let test_select_empty () =
  try
    ignore (Simpoints.select ~slice_len:100 [||]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Aggregate *)

let test_aggregate_merge () =
  let micro =
    Array.init 7 (fun i -> mk_slice i (i * 10) 10 [| (i mod 3, 10) |])
  in
  let merged = Aggregate.merge ~factor:3 micro in
  Alcotest.(check int) "groups" 3 (Array.length merged);
  Alcotest.(check int) "first length" 30 merged.(0).Sp_pin.Bbv_tool.length;
  Alcotest.(check int) "tail partial" 10 merged.(2).Sp_pin.Bbv_tool.length;
  (* total mass preserved *)
  let mass slices =
    Array.fold_left
      (fun acc (s : Sp_pin.Bbv_tool.slice) ->
        acc + Array.fold_left (fun a (_, c) -> a + c) 0 s.Sp_pin.Bbv_tool.bbv)
      0 slices
  in
  Alcotest.(check int) "mass preserved" (mass micro) (mass merged);
  (* merged bbvs sorted by block id *)
  Array.iter
    (fun (s : Sp_pin.Bbv_tool.slice) ->
      let ids = Array.map fst s.Sp_pin.Bbv_tool.bbv in
      let sorted = Array.copy ids in
      Array.sort compare sorted;
      Alcotest.(check bool) "sorted" true (ids = sorted))
    merged

let test_aggregate_identity () =
  let micro = planted_slices ~phases:2 ~per_phase:3 () in
  Alcotest.(check bool) "factor 1 is identity" true
    (Aggregate.merge ~factor:1 micro == micro)

(* ------------------------------------------------------------------ *)
(* Variable-length intervals *)

let test_vli_merges_stable_phases () =
  (* 40 identical slices then 40 different ones: VLI should produce few
     intervals, splitting exactly at the phase change *)
  let micro =
    Array.init 80 (fun i ->
        mk_slice i (i * 100) 100 [| ((if i < 40 then 1 else 50), 100) |])
  in
  let intervals = Sp_simpoint.Vli.segment micro in
  Alcotest.(check bool)
    (Printf.sprintf "few intervals (%d)" (Array.length intervals))
    true
    (Array.length intervals <= 4);
  (* contiguity and mass conservation *)
  let total = ref 0 in
  Array.iter
    (fun (s : Sp_pin.Bbv_tool.slice) ->
      Alcotest.(check int) "contiguous" !total s.Sp_pin.Bbv_tool.start_icount;
      total := !total + s.Sp_pin.Bbv_tool.length)
    intervals;
  Alcotest.(check int) "mass" 8000 !total;
  (* no interval spans the phase boundary *)
  Array.iter
    (fun (s : Sp_pin.Bbv_tool.slice) ->
      Alcotest.(check bool) "no boundary straddle" true
        (s.Sp_pin.Bbv_tool.start_icount + s.Sp_pin.Bbv_tool.length <= 4000
        || s.Sp_pin.Bbv_tool.start_icount >= 4000))
    intervals

let test_vli_max_len () =
  let micro = Array.init 50 (fun i -> mk_slice i (i * 100) 100 [| (1, 100) |]) in
  let intervals = Sp_simpoint.Vli.segment ~max_len:250 micro in
  Array.iter
    (fun (s : Sp_pin.Bbv_tool.slice) ->
      Alcotest.(check bool) "bounded" true (s.Sp_pin.Bbv_tool.length <= 250))
    intervals

let test_vli_select_weights () =
  let micro =
    Array.init 90 (fun i ->
        mk_slice i (i * 100) 100 [| ((10 * (i mod 3)) + 1, 100) |])
  in
  let sel = Sp_simpoint.Vli.select ~micro_len:100 micro in
  Alcotest.(check (float 1e-9)) "instruction weights sum to 1" 1.0
    (Sp_simpoint.Simpoints.total_weight sel.Sp_simpoint.Simpoints.points)

(* ------------------------------------------------------------------ *)
(* Variance *)

let test_variance_decreases_with_k () =
  let slices = planted_slices ~phases:6 ~per_phase:30 ~noise:4 () in
  let sweep = Variance.sweep ~ks:[ 2; 6 ] slices in
  match sweep with
  | [ low_k; high_k ] ->
      Alcotest.(check bool)
        (Printf.sprintf "var(k=2)=%g > var(k=6)=%g" low_k.Variance.avg_variance
           high_k.Variance.avg_variance)
        true
        (low_k.Variance.avg_variance > high_k.Variance.avg_variance)
  | _ -> Alcotest.fail "expected two sweep points"

(* ------------------------------------------------------------------ *)
(* Systematic design bugfixes *)

(* regression: floor division overshot the budget (10 slices at budget
   4 gave period 2 and 5 samples); sweep the whole small design space *)
let test_design_budget_sweep () =
  for num_slices = 1 to 40 do
    for budget = 1 to num_slices do
      let d = Systematic.design_for_budget ~num_slices ~budget in
      let n = Array.length (Systematic.sample_indices d ~num_slices) in
      if n > budget then
        Alcotest.failf "num_slices=%d budget=%d: %d samples overshoot"
          num_slices budget n;
      if n < 1 then
        Alcotest.failf "num_slices=%d budget=%d: empty design" num_slices
          budget
    done
  done

let test_required_samples_clamp () =
  Alcotest.(check int)
    "cv=0 still needs one measurement" 1
    (Systematic.required_samples ~cv:0.0 ~target_rel_ci:0.03);
  Alcotest.(check bool)
    "positive cv needs more" true
    (Systematic.required_samples ~cv:0.1 ~target_rel_ci:0.03 > 1)

(* subsample indices: strictly increasing, in-bounds, and the final
   pick lands inside the last stride (the float-stride version could
   duplicate indices and never reached the tail) *)
let prop_subsample =
  QCheck.Test.make ~name:"subsample exact integer stride" ~count:200
    QCheck.(pair (int_range 1 5000) (int_range 1 400))
    (fun (n, cap) ->
      let xs = Array.init n Fun.id in
      let sub = Simpoints.subsample cap xs in
      if n <= cap then sub = xs
      else begin
        Array.length sub = cap
        && Array.for_all (fun i -> i >= 0 && i < n) sub
        && (let increasing = ref true in
            for i = 1 to cap - 1 do
              if sub.(i) <= sub.(i - 1) then increasing := false
            done;
            !increasing)
        (* last pick inside the final stride [(cap-1)*n/cap, n) *)
        && sub.(cap - 1) >= (cap - 1) * n / cap
      end)

(* ------------------------------------------------------------------ *)
(* Sampler interface: differential suite over all registered kinds *)

let sampler_slices = planted_slices ~phases:4 ~per_phase:50 ~noise:3 ()

let select_with ?budget ?(jobs = 1) ?(seed = Simpoints.default_config.seed)
    kind =
  let config = { Simpoints.default_config with jobs; seed } in
  Sampler.select ~config ?budget kind ~slice_len:100 sampler_slices

let test_sampler_weights_sum () =
  List.iter
    (fun kind ->
      let out = select_with kind in
      Alcotest.(check (float 1e-6))
        (Sampler.name kind ^ " weights sum to 1")
        1.0
        (Simpoints.total_weight out.Sampler.points))
    Sampler.all_kinds

let test_sampler_points_valid () =
  let n = Array.length sampler_slices in
  List.iter
    (fun kind ->
      let out = select_with kind in
      let seen = Hashtbl.create 64 in
      Array.iter
        (fun (p : Simpoints.point) ->
          if p.slice_index < 0 || p.slice_index >= n then
            Alcotest.failf "%s: slice index %d out of bounds"
              (Sampler.name kind) p.slice_index;
          if Hashtbl.mem seen p.slice_index then
            Alcotest.failf "%s: duplicate slice %d" (Sampler.name kind)
              p.slice_index;
          Hashtbl.add seen p.slice_index ();
          if p.weight <= 0.0 then
            Alcotest.failf "%s: non-positive weight" (Sampler.name kind);
          let s = sampler_slices.(p.slice_index) in
          if
            p.start_icount <> s.Sp_pin.Bbv_tool.start_icount
            || p.length <> s.Sp_pin.Bbv_tool.length
          then
            Alcotest.failf "%s: point does not match its slice"
              (Sampler.name kind))
        out.Sampler.points)
    Sampler.all_kinds

let test_sampler_budget_respected () =
  List.iter
    (fun kind ->
      List.iter
        (fun budget ->
          let out = select_with ~budget kind in
          let n = Array.length out.Sampler.points in
          if n > budget then
            Alcotest.failf "%s: %d points exceed budget %d"
              (Sampler.name kind) n budget;
          if n < 1 then
            Alcotest.failf "%s: empty selection at budget %d"
              (Sampler.name kind) budget)
        [ 1; 4; 7; 35 ])
    Sampler.all_kinds

let check_same_output kind msg (a : Sampler.output) (b : Sampler.output) =
  Alcotest.(check bool)
    (Sampler.name kind ^ ": " ^ msg)
    true
    (a.Sampler.points = b.Sampler.points
    && a.Sampler.groups = b.Sampler.groups
    && a.Sampler.diagnostics = b.Sampler.diagnostics
    && a.Sampler.bic_curve = b.Sampler.bic_curve)

let test_sampler_jobs_invariant () =
  List.iter
    (fun kind ->
      check_same_output kind "jobs 1 = jobs 4"
        (select_with ~jobs:1 kind)
        (select_with ~jobs:4 kind))
    Sampler.all_kinds

let test_sampler_deterministic () =
  List.iter
    (fun kind ->
      check_same_output kind "fixed seed reproduces" (select_with kind)
        (select_with kind))
    Sampler.all_kinds

(* the refactor's no-regression guarantee: the SimPoint implementation
   behind the Sampler interface returns exactly what the pre-refactor
   direct call returns, on a pinned workload *)
let test_sampler_simpoint_parity () =
  let direct = Simpoints.select ~slice_len:100 sampler_slices in
  let out = select_with Sampler.Simpoint in
  Alcotest.(check bool)
    "points bit-identical" true
    (out.Sampler.points = direct.Simpoints.points);
  Alcotest.(check int)
    "groups = chosen_k" direct.Simpoints.chosen_k out.Sampler.groups;
  Alcotest.(check bool)
    "bic curve identical" true
    (out.Sampler.bic_curve = direct.Simpoints.bic_curve)

let test_sampler_names () =
  List.iter
    (fun kind ->
      match Sampler.of_name (Sampler.name kind) with
      | Ok k -> Alcotest.(check bool) "round-trips" true (k = kind)
      | Error e -> Alcotest.fail e)
    Sampler.all_kinds;
  match Sampler.of_name "bogus" with
  | Ok _ -> Alcotest.fail "bogus name accepted"
  | Error _ -> ()

(* stratified diagnostics: the pilot stratification should capture most
   of the auxiliary variance on a cleanly-phased workload *)
let test_stratified_diagnostics () =
  let out = select_with Sampler.Stratified in
  match List.assoc_opt "var_within_frac" out.Sampler.diagnostics with
  | None -> Alcotest.fail "missing var_within_frac diagnostic"
  | Some f ->
      Alcotest.(check bool)
        (Printf.sprintf "within-stratum fraction %g in [0,1]" f)
        true
        (f >= 0.0 && f <= 1.0)

let test_rss_diagnostics () =
  let out = select_with Sampler.Rss in
  List.iter
    (fun key ->
      if not (List.mem_assoc key out.Sampler.diagnostics) then
        Alcotest.failf "missing %s diagnostic" key)
    [ "set_size"; "repeats"; "aux_mean"; "aux_draw_var"; "aux_draw_se" ]

let suite =
  [
    Alcotest.test_case "projection deterministic" `Quick test_projection_deterministic;
    Alcotest.test_case "projection dim" `Quick test_projection_dim;
    Alcotest.test_case "projection scale invariant" `Quick test_projection_scale_invariant;
    Alcotest.test_case "matrix entry range" `Quick test_matrix_entry_range;
    Alcotest.test_case "kmeans k=1" `Quick test_kmeans_k1;
    Alcotest.test_case "kmeans separated blobs" `Quick test_kmeans_separated_blobs;
    Alcotest.test_case "kmeans sizes sum" `Quick test_kmeans_sizes_sum;
    Alcotest.test_case "kmeans k clamped" `Quick test_kmeans_k_clamped;
    QCheck_alcotest.to_alcotest prop_assign_nearest;
    Alcotest.test_case "bic prefers true k" `Quick test_bic_prefers_true_k;
    Alcotest.test_case "bic pick_k" `Quick test_pick_k;
    Alcotest.test_case "select recovers phases" `Quick test_select_recovers_phases;
    Alcotest.test_case "select with forced k" `Quick test_select_with_k;
    Alcotest.test_case "reduce 90th percentile" `Quick test_reduce;
    Alcotest.test_case "select empty" `Quick test_select_empty;
    Alcotest.test_case "aggregate merge" `Quick test_aggregate_merge;
    Alcotest.test_case "aggregate identity" `Quick test_aggregate_identity;
    Alcotest.test_case "variance vs k" `Quick test_variance_decreases_with_k;
    Alcotest.test_case "vli merges stable phases" `Quick test_vli_merges_stable_phases;
    Alcotest.test_case "vli max length" `Quick test_vli_max_len;
    Alcotest.test_case "vli instruction weights" `Quick test_vli_select_weights;
    Alcotest.test_case "systematic budget sweep" `Quick test_design_budget_sweep;
    Alcotest.test_case "required samples clamp" `Quick test_required_samples_clamp;
    QCheck_alcotest.to_alcotest prop_subsample;
    Alcotest.test_case "sampler weights sum" `Quick test_sampler_weights_sum;
    Alcotest.test_case "sampler points valid" `Quick test_sampler_points_valid;
    Alcotest.test_case "sampler budget respected" `Quick test_sampler_budget_respected;
    Alcotest.test_case "sampler jobs invariant" `Quick test_sampler_jobs_invariant;
    Alcotest.test_case "sampler deterministic" `Quick test_sampler_deterministic;
    Alcotest.test_case "sampler simpoint parity" `Quick test_sampler_simpoint_parity;
    Alcotest.test_case "sampler name round-trip" `Quick test_sampler_names;
    Alcotest.test_case "stratified diagnostics" `Quick test_stratified_diagnostics;
    Alcotest.test_case "rss diagnostics" `Quick test_rss_diagnostics;
  ]
