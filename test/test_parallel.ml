(* Tests for the multicore execution layer: the Sp_util.Pool domain
   pool itself, and the jobs=1 vs jobs=N equivalence guarantees of the
   parallel pipeline stages (k-means, variance sweep, run_benchmark). *)

open Sp_util

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_empty () =
  let r = Pool.parallel_map ~jobs:4 (fun x -> x + 1) [||] in
  Alcotest.(check int) "empty in, empty out" 0 (Array.length r)

let test_pool_jobs_exceed_n () =
  (* more workers than items: exactly n results, input order *)
  let r = Pool.parallel_map ~jobs:16 (fun x -> x * x) [| 1; 2; 3 |] in
  Alcotest.(check (list int)) "squares" [ 1; 4; 9 ] (Array.to_list r)

let test_pool_order_uneven_work () =
  (* per-item cost decreasing with index: late items finish first, yet
     results must land in input order *)
  let n = 64 in
  let input = Array.init n (fun i -> i) in
  let busy i =
    let acc = ref 0 in
    for _ = 1 to (n - i) * 1000 do
      incr acc
    done;
    ignore !acc;
    2 * i
  in
  let r = Pool.parallel_map ~jobs:4 busy input in
  Alcotest.(check bool) "input order" true
    (r = Array.init n (fun i -> 2 * i))

let test_pool_exception_propagates () =
  let raised =
    try
      ignore
        (Pool.parallel_map ~jobs:4
           (fun i -> if i = 5 then failwith "boom" else i)
           (Array.init 32 (fun i -> i)));
      None
    with Failure msg -> Some msg
  in
  Alcotest.(check (option string)) "Failure re-raised" (Some "boom") raised

let test_pool_sequential_fallback () =
  (* jobs=1 must not spawn: run on the calling domain so domain-local
     state is visible *)
  let self = Domain.self () in
  let r =
    Pool.parallel_map ~jobs:1 (fun () -> Domain.self ()) [| (); (); () |]
  in
  Array.iter
    (fun d -> Alcotest.(check bool) "same domain" true (d = self))
    r

let test_parallel_for_covers () =
  let n = 103 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~jobs:4 ~n (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_chunk_bounds_partition () =
  List.iter
    (fun (chunks, n) ->
      let b = Pool.chunk_bounds ~chunks ~n in
      let lo0, _ = b.(0) in
      Alcotest.(check int) "starts at 0" 0 lo0;
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check bool) "non-empty" true (hi > lo);
          if i > 0 then
            Alcotest.(check int) "contiguous" lo (snd b.(i - 1)))
        b;
      Alcotest.(check int) "ends at n" n (snd b.(Array.length b - 1)))
    [ (1, 10); (3, 10); (4, 103); (16, 8); (7, 7) ]

let test_pool_nested_degrades () =
  (* a parallel_map inside a worker runs sequentially instead of
     spawning jobs*jobs domains; results are still correct *)
  let r =
    Pool.parallel_map ~jobs:3
      (fun base ->
        Pool.parallel_map ~jobs:3
          (fun i -> (10 * base) + i)
          [| 1; 2; 3 |])
      [| 1; 2 |]
  in
  Alcotest.(check bool) "nested results" true
    (r = [| [| 11; 12; 13 |]; [| 21; 22; 23 |] |])

(* ------------------------------------------------------------------ *)
(* jobs=1 vs jobs=N equivalence *)

let random_points ~n ~dim seed =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Array.init dim (fun _ -> Rng.float rng 1.0))

let test_kmeans_jobs_equivalence () =
  let points = random_points ~n:500 ~dim:12 9 in
  let a = Sp_simpoint.Kmeans.fit ~seed:3 ~jobs:1 ~k:9 points in
  let b = Sp_simpoint.Kmeans.fit ~seed:3 ~jobs:4 ~k:9 points in
  Alcotest.(check bool) "assignment" true
    (a.Sp_simpoint.Kmeans.assignment = b.Sp_simpoint.Kmeans.assignment);
  Alcotest.(check bool) "centroids bitwise" true
    (a.Sp_simpoint.Kmeans.centroids = b.Sp_simpoint.Kmeans.centroids);
  Alcotest.(check bool) "sizes" true
    (a.Sp_simpoint.Kmeans.sizes = b.Sp_simpoint.Kmeans.sizes);
  Alcotest.(check bool) "distortion bitwise" true
    (Int64.bits_of_float a.Sp_simpoint.Kmeans.distortion
    = Int64.bits_of_float b.Sp_simpoint.Kmeans.distortion)

let test_variance_sweep_jobs_equivalence () =
  let slices =
    Array.init 120 (fun i ->
        {
          Sp_pin.Bbv_tool.index = i;
          start_icount = i * 100;
          length = 100;
          bbv = [| (i mod 4 * 10, 60); ((i mod 4 * 10) + 1, 40) |];
        })
  in
  let at jobs =
    let config = { Sp_simpoint.Simpoints.default_config with jobs } in
    Sp_simpoint.Variance.sweep ~config ~ks:[ 2; 3; 5 ] slices
  in
  Alcotest.(check bool) "sweep identical" true (at 1 = at 4)

let parallel_test_options jobs =
  {
    Specrepro.Pipeline.default_options with
    slices_scale = 0.04;
    variance_ks = [ 3; 5 ];
    collect_variance = true;
    progress = false;
    jobs;
  }

let check_benchmark_equivalence name =
  let spec = Sp_workloads.Suite.find name in
  let open Specrepro in
  let a = Pipeline.run_benchmark ~options:(parallel_test_options 1) spec in
  let b = Pipeline.run_benchmark ~options:(parallel_test_options 4) spec in
  Alcotest.(check int) (name ^ ": chosen k") a.Pipeline.selection.chosen_k
    b.Pipeline.selection.chosen_k;
  Alcotest.(check bool) (name ^ ": points identical") true
    (a.Pipeline.selection.points = b.Pipeline.selection.points);
  Alcotest.(check bool) (name ^ ": bic curve identical") true
    (a.Pipeline.selection.bic_curve = b.Pipeline.selection.bic_curve);
  Alcotest.(check bool) (name ^ ": cold point stats identical") true
    (a.Pipeline.point_stats = b.Pipeline.point_stats);
  Alcotest.(check bool) (name ^ ": warm point stats identical") true
    (a.Pipeline.warm_point_stats = b.Pipeline.warm_point_stats);
  Alcotest.(check bool) (name ^ ": variance sweep identical") true
    (a.Pipeline.variance = b.Pipeline.variance);
  Alcotest.(check bool) (name ^ ": whole stats identical") true
    (a.Pipeline.whole = b.Pipeline.whole)

let test_pipeline_jobs_equivalence_omnetpp () =
  check_benchmark_equivalence "620.omnetpp_s"

let test_pipeline_jobs_equivalence_xz () =
  check_benchmark_equivalence "557.xz_r"

let test_run_suite_jobs_equivalence () =
  let open Specrepro in
  let specs =
    [ Sp_workloads.Suite.find "620.omnetpp_s"; Sp_workloads.Suite.find "557.xz_r" ]
  in
  let options = parallel_test_options 1 in
  let seq = Pipeline.run_suite ~options ~specs () in
  let par = Pipeline.run_suite ~options:{ options with Pipeline.jobs = 4 } ~specs () in
  Alcotest.(check int) "same count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Pipeline.bench_result) (b : Pipeline.bench_result) ->
      Alcotest.(check string) "spec order preserved"
        a.Pipeline.spec.Sp_workloads.Benchspec.name
        b.Pipeline.spec.Sp_workloads.Benchspec.name;
      Alcotest.(check bool) "selection identical" true
        (a.Pipeline.selection.points = b.Pipeline.selection.points);
      Alcotest.(check bool) "cold stats identical" true
        (a.Pipeline.point_stats = b.Pipeline.point_stats))
    seq par

let suite =
  [
    Alcotest.test_case "pool empty array" `Quick test_pool_empty;
    Alcotest.test_case "pool jobs > n" `Quick test_pool_jobs_exceed_n;
    Alcotest.test_case "pool order with uneven work" `Quick
      test_pool_order_uneven_work;
    Alcotest.test_case "pool exception propagation" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "pool jobs=1 stays on caller" `Quick
      test_pool_sequential_fallback;
    Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_covers;
    Alcotest.test_case "chunk bounds partition" `Quick
      test_chunk_bounds_partition;
    Alcotest.test_case "nested fan-out degrades" `Quick
      test_pool_nested_degrades;
    Alcotest.test_case "kmeans jobs equivalence" `Quick
      test_kmeans_jobs_equivalence;
    Alcotest.test_case "variance sweep jobs equivalence" `Quick
      test_variance_sweep_jobs_equivalence;
    Alcotest.test_case "pipeline jobs equivalence (omnetpp)" `Slow
      test_pipeline_jobs_equivalence_omnetpp;
    Alcotest.test_case "pipeline jobs equivalence (xz)" `Slow
      test_pipeline_jobs_equivalence_xz;
    Alcotest.test_case "run_suite jobs equivalence" `Slow
      test_run_suite_jobs_equivalence;
  ]
