(* Tests for Sp_pinball: logging, replay fidelity, regional capture,
   the on-disk store. *)

open Sp_isa
open Sp_vm
open Sp_pinball

(* a small program with non-deterministic inputs: sums sys values and
   writes a running pattern to memory *)
let sys_program ~iters =
  let a = Asm.create ~name:"syss" () in
  Asm.li a 1 0x1000;
  Asm.li a 2 iters;
  let top = Asm.here a in
  Asm.sys a 0 3;
  Asm.alu a Add 4 4 3;
  Asm.store a 4 1 0;
  Asm.alui a Add 1 1 8;
  Asm.alui a Sub 2 2 1;
  Asm.branch a Gt 2 15 top;
  Asm.halt a;
  Asm.assemble a

let noisy_syscall seed =
  let rng = Sp_util.Rng.create seed in
  fun (_ : int) -> Sp_util.Rng.int rng 1000

let test_log_whole () =
  let prog = sys_program ~iters:20 in
  let whole = Logger.log_whole ~benchmark:"t" prog in
  Alcotest.(check bool) "counted" true (whole.Logger.total_insns > 100);
  Alcotest.(check int) "recorded all inputs" 20
    (Array.length whole.Logger.pinball.Pinball.syscalls);
  Alcotest.(check int) "whole starts at zero" 0
    (Pinball.start_icount whole.Logger.pinball);
  Alcotest.(check (float 0.0)) "whole weight" 1.0
    (Pinball.weight whole.Logger.pinball)

let test_whole_replay_reproduces () =
  let prog = sys_program ~iters:25 in
  (* log with a non-trivial input source *)
  let whole = Logger.log_whole ~syscall:(noisy_syscall 3) ~benchmark:"t" prog in
  let result = Replayer.replay whole.Logger.pinball in
  Alcotest.(check int) "same instruction count" whole.Logger.total_insns
    result.Replayer.retired;
  (* re-run natively with the same inputs to get ground-truth state *)
  let m = Interp.create ~entry:0 () in
  ignore (Interp.run ~syscall:(noisy_syscall 3) prog m);
  Alcotest.(check int) "same accumulator" m.Interp.regs.(4)
    result.Replayer.machine.Interp.regs.(4);
  Alcotest.(check int) "same memory"
    (Memory.load m.Interp.mem 0x1008)
    (Memory.load result.Replayer.machine.Interp.mem 0x1008)

let mk_point cluster slice_index start length weight =
  { Sp_simpoint.Simpoints.cluster; slice_index; start_icount = start; length; weight }

let test_regional_capture_matches_ground_truth () =
  let prog = sys_program ~iters:100 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 7) ~benchmark:"t" prog in
  let start = 150 and len = 120 in
  let points = [| mk_point 0 0 start len 1.0 |] in
  let regions = Logger.capture_regions whole points in
  Alcotest.(check int) "one region" 1 (Array.length regions);
  let mixt = Sp_pin.Ldstmix.create () in
  let r = Replayer.replay ~tools:[ Sp_pin.Ldstmix.hooks mixt ] regions.(0) in
  Alcotest.(check int) "exact length" len r.Replayer.retired;
  (* ground truth: native run, instrument the same interval *)
  let gt = Sp_pin.Ldstmix.create () in
  let m = Interp.create ~entry:0 () in
  let syscall = noisy_syscall 7 in
  ignore (Interp.run ~syscall ~fuel:start prog m);
  ignore (Interp.run ~hooks:(Sp_pin.Ldstmix.hooks gt) ~syscall ~fuel:len prog m);
  List.iter
    (fun cls ->
      Alcotest.(check int)
        (Isa.mem_class_name cls)
        (Sp_pin.Ldstmix.count gt cls)
        (Sp_pin.Ldstmix.count mixt cls))
    Isa.all_mem_classes

let test_region_syscall_injection () =
  let prog = sys_program ~iters:50 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 11) ~benchmark:"t" prog in
  (* a region that contains syscalls: replaying twice is deterministic *)
  let points = [| mk_point 0 0 60 90 1.0 |] in
  let regions = Logger.capture_regions whole points in
  let run () =
    let r = Replayer.replay regions.(0) in
    r.Replayer.machine.Interp.regs.(4)
  in
  Alcotest.(check int) "deterministic replay" (run ()) (run ())

let test_replay_divergence () =
  let prog = sys_program ~iters:10 in
  let whole = Logger.log_whole ~benchmark:"t" prog in
  let pb = whole.Logger.pinball in
  (* corrupt: drop the recorded inputs *)
  let broken = { pb with Pinball.syscalls = [||] } in
  try
    ignore (Replayer.replay broken);
    Alcotest.fail "expected Divergence"
  with Replayer.Divergence _ -> ()

let test_scan_matches_capture () =
  let prog = sys_program ~iters:80 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 2) ~benchmark:"t" prog in
  let points =
    [| mk_point 1 0 100 50 0.5; mk_point 0 0 300 50 0.5 |]
  in
  let captured = Logger.capture_regions whole points in
  let scanned = ref [] in
  Logger.scan_regions whole points (fun pb -> scanned := pb :: !scanned);
  let scanned = List.rev !scanned in
  Alcotest.(check int) "same count" 2 (List.length scanned);
  List.iteri
    (fun i pb ->
      (* scan order is by start; points were given in start order here *)
      let ref_pb = captured.(i) in
      let final pb = (Replayer.replay pb).Replayer.machine.Interp.regs.(4) in
      Alcotest.(check int) "same replay result" (final ref_pb) (final pb))
    scanned

let test_scan_warmup_hooks () =
  let prog = sys_program ~iters:200 in
  let whole = Logger.log_whole ~benchmark:"t" prog in
  let points = [| mk_point 0 0 600 100 1.0 |] in
  let warm_count = ref 0 in
  let started = ref 0 in
  let warmup =
    {
      Logger.length = 250;
      hooks = { Hooks.nil with on_instr = (fun _ _ -> incr warm_count) };
      on_start = (fun () -> incr started);
    }
  in
  Logger.scan_regions ~warmup whole points (fun _ -> ());
  Alcotest.(check int) "on_start once" 1 !started;
  Alcotest.(check int) "warm window length" 250 !warm_count

let test_scan_warmup_clamped () =
  let prog = sys_program ~iters:200 in
  let whole = Logger.log_whole ~benchmark:"t" prog in
  let points = [| mk_point 0 0 100 50 1.0 |] in
  let warm_count = ref 0 in
  let warmup =
    {
      Logger.length = 10_000;
      hooks = { Hooks.nil with on_instr = (fun _ _ -> incr warm_count) };
      on_start = ignore;
    }
  in
  Logger.scan_regions ~warmup whole points (fun _ -> ());
  Alcotest.(check int) "clamped to gap" 100 !warm_count

(* ------------------------------------------------------------------ *)
(* the on-disk store (format v2) *)

let fresh_dir () =
  let d = Filename.temp_file "spstore" "" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let load_ok path =
  match Store.load path with
  | Ok pb -> pb
  | Error e -> Alcotest.failf "load %s: %s" path (Store.error_message e)

let check_pinball_equal what (a : Pinball.t) (b : Pinball.t) =
  Alcotest.(check string) (what ^ ": benchmark") a.benchmark b.benchmark;
  Alcotest.(check bool) (what ^ ": kind") true (a.kind = b.kind);
  Alcotest.(check (option int)) (what ^ ": length") a.length b.length;
  Alcotest.(check bool) (what ^ ": syscalls") true (a.syscalls = b.syscalls);
  Alcotest.(check bool) (what ^ ": program instrs") true
    (a.program.Program.instrs = b.program.Program.instrs);
  Alcotest.(check int) (what ^ ": entry") a.program.Program.entry
    b.program.Program.entry;
  Alcotest.(check int) (what ^ ": start icount") (Pinball.start_icount a)
    (Pinball.start_icount b);
  (* replay equality is the property that matters *)
  let final pb =
    let r = Replayer.replay pb in
    (r.Replayer.retired, r.Replayer.machine.Interp.regs.(4))
  in
  Alcotest.(check bool) (what ^ ": replays equal") true (final a = final b)

let test_store_roundtrip () =
  let dir = fresh_dir () in
  let prog = sys_program ~iters:30 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 5) ~benchmark:"bench.x" prog in
  let path = Store.save ~dir whole.Logger.pinball in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  let loaded = load_ok path in
  check_pinball_equal "whole" whole.Logger.pinball loaded;
  Alcotest.(check (list string)) "listed" [ path ] (Store.list_dir ~dir);
  Alcotest.(check bool) "verify ok" true (Store.verify path = Ok ());
  rm_rf dir

let test_store_region_roundtrip () =
  let dir = fresh_dir () in
  let prog = sys_program ~iters:100 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 9) ~benchmark:"rr" prog in
  (* capture past the start so the snapshot carries touched memory pages
     and a non-zero icount *)
  let points = [| mk_point 3 0 150 120 0.75 |] in
  let region = (Logger.capture_regions whole points).(0) in
  let path = Store.save ~dir region in
  let loaded = load_ok path in
  check_pinball_equal "region" region loaded;
  (match loaded.Pinball.kind with
  | Pinball.Region { cluster; weight } ->
      Alcotest.(check int) "cluster" 3 cluster;
      Alcotest.(check (float 0.0)) "weight" 0.75 weight
  | Pinball.Whole -> Alcotest.fail "expected a region");
  rm_rf dir

let test_store_errors () =
  let dir = fresh_dir () in
  Store.mkdir_p dir;
  let file name data =
    let p = Filename.concat dir name in
    write_file p data;
    p
  in
  (match Store.load (Filename.concat dir "absent.pb") with
  | Error (Store.No_such_file _) -> ()
  | _ -> Alcotest.fail "expected No_such_file");
  (* shorter than the magic+version header: used to raise End_of_file *)
  (match Store.load (file "short.pb" "SPRE") with
  | Error (Store.Short_file _) -> ()
  | _ -> Alcotest.fail "expected Short_file");
  (match Store.load (file "junk.pb" "NOT-A-PINBALL-AT-ALL") with
  | Error (Store.Bad_magic _) -> ()
  | _ -> Alcotest.fail "expected Bad_magic");
  (* a legacy v1 file: magic + big-endian version 1 + a Marshal blob.
     The v2 loader must identify the version cleanly, not crash in
     Marshal. *)
  let v1 =
    let b = Buffer.create 64 in
    Buffer.add_string b "SPREPRO-PINBALL";
    Buffer.add_int32_be b 1l;
    Buffer.add_string b (Marshal.to_string (1, "not a pinball") []);
    Buffer.contents b
  in
  (match Store.load (file "legacy.pb" v1) with
  | Error (Store.Bad_version { found; _ } as e) ->
      Alcotest.(check int) "legacy version detected" 1 found;
      Alcotest.(check bool) "message names the version" true
        (Astring_contains.contains (Store.error_message e) "version 1")
  | _ -> Alcotest.fail "expected Bad_version");
  (* valid file with one payload byte corrupted: checksum must catch it *)
  let prog = sys_program ~iters:10 in
  let whole = Logger.log_whole ~benchmark:"c" prog in
  let path = Store.save ~dir whole.Logger.pinball in
  let data = read_file path in
  let broken = Bytes.of_string data in
  let mid = String.length data / 2 in
  Bytes.set broken mid (Char.chr (Char.code (Bytes.get broken mid) lxor 0x01));
  write_file path (Bytes.to_string broken);
  (match Store.load path with
  | Error (Store.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "corrupted file decoded"
  | Error e -> Alcotest.failf "expected Corrupt, got %s" (Store.error_message e));
  rm_rf dir

(* Offsets of every framing field: section starts, payload starts,
   payload ends, checksum fields.  Derived by walking the real file so
   the fuzzers always hit the exact boundaries. *)
let section_boundaries data =
  let header = 15 + 4 in
  let u32_le s pos = Int32.to_int (String.get_int32_le s pos) land 0xFFFF_FFFF in
  let acc = ref [ 0; 15; header ] in
  let pos = ref header in
  for _ = 1 to 4 do
    let len = u32_le data (!pos + 4) in
    acc := !pos :: (!pos + 4) :: (!pos + 8) :: (!pos + 8 + len)
           :: (!pos + 8 + len + 4) :: !acc;
    pos := !pos + 8 + len + 4
  done;
  List.sort_uniq compare (List.filter (fun o -> o <= String.length data) !acc)

let expect_error what data =
  match Store.of_bytes data with
  | Ok _ -> Alcotest.failf "%s: decoded successfully" what
  | Error _ -> ()
  | exception e ->
      Alcotest.failf "%s: raised %s" what (Printexc.to_string e)

let test_store_fuzz_whole () =
  (* the whole pinball of a small program is a few hundred bytes, so
     fuzz it exhaustively: every truncation length and every single-bit
     flip must come back as a typed error — never an exception *)
  let prog = sys_program ~iters:20 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 5) ~benchmark:"fz" prog in
  let dir = fresh_dir () in
  let path = Store.save ~dir whole.Logger.pinball in
  let data = read_file path in
  rm_rf dir;
  Alcotest.(check bool) "baseline decodes" true
    (Result.is_ok (Store.of_bytes data));
  let n = String.length data in
  for len = 0 to n - 1 do
    expect_error
      (Printf.sprintf "truncation to %d" len)
      (String.sub data 0 len)
  done;
  for i = 0 to n - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string data in
      Bytes.set b i (Char.chr (Char.code data.[i] lxor (1 lsl bit)));
      expect_error (Printf.sprintf "bit %d of byte %d" bit i) (Bytes.to_string b)
    done
  done

let test_store_fuzz_region () =
  (* a regional pinball carries memory pages, so the file is tens of kB;
     fuzz every section boundary exactly, plus a stride over the body *)
  let prog = sys_program ~iters:100 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 13) ~benchmark:"fz" prog in
  let region =
    (Logger.capture_regions whole [| mk_point 0 0 150 100 1.0 |]).(0)
  in
  let dir = fresh_dir () in
  let path = Store.save ~dir region in
  let data = read_file path in
  rm_rf dir;
  let n = String.length data in
  Alcotest.(check bool) "region file has memory pages" true (n > 10_000);
  let boundaries = section_boundaries data in
  let truncs =
    List.concat_map (fun o -> [ o - 1; o; o + 1 ]) boundaries
    |> List.filter (fun l -> l >= 0 && l < n)
  in
  let strided = List.init (n / 97) (fun i -> i * 97) in
  List.iter
    (fun len ->
      expect_error
        (Printf.sprintf "truncation to %d" len)
        (String.sub data 0 len))
    (List.sort_uniq compare (truncs @ strided));
  List.iter
    (fun i ->
      let b = Bytes.of_string data in
      Bytes.set b i (Char.chr (Char.code data.[i] lxor (1 lsl (i mod 8))));
      expect_error (Printf.sprintf "flip in byte %d" i) (Bytes.to_string b))
    (List.filter (fun i -> i < n)
       (boundaries @ strided))

let test_store_concurrent_save () =
  (* 4 pool domains saving into the same fresh (nested) directory: the
     old Sys.file_exists/Sys.mkdir pair could throw EEXIST here *)
  let dir = Filename.concat (fresh_dir ()) "nested/deeper" in
  let prog = sys_program ~iters:100 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 1) ~benchmark:"cc" prog in
  let points = Array.init 8 (fun i -> mk_point i 0 (30 * i) 20 0.125) in
  let regions = Logger.capture_regions whole points in
  let paths =
    Sp_util.Pool.parallel_map ~jobs:4 (fun pb -> Store.save ~dir pb) regions
  in
  Alcotest.(check int) "all files listed" 8
    (List.length (Store.list_dir ~dir));
  Array.iteri
    (fun i path ->
      let loaded = load_ok path in
      check_pinball_equal (Printf.sprintf "concurrent %d" i) regions.(i) loaded)
    paths;
  rm_rf (Filename.dirname (Filename.dirname dir))

let test_artifact_cache () =
  let dir = fresh_dir () in
  let key =
    Artifact_cache.key ~benchmark:"b.x" ~slice_insns:1000 ~slices_scale:0.5
  in
  (* the key is a stable function of its inputs *)
  Alcotest.(check string) "key deterministic" key
    (Artifact_cache.key ~benchmark:"b.x" ~slice_insns:1000 ~slices_scale:0.5);
  Alcotest.(check bool) "key separates params" true
    (key
    <> Artifact_cache.key ~benchmark:"b.x" ~slice_insns:1001 ~slices_scale:0.5);
  Alcotest.(check bool) "miss on empty dir" true
    (Artifact_cache.find_whole ~dir ~key = Artifact_cache.Miss);
  let prog = sys_program ~iters:40 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 21) ~benchmark:"b.x" prog in
  let path =
    Artifact_cache.store_whole ~dir ~key ~slice_insns:1000 ~slices_scale:0.5
      whole
  in
  (match Artifact_cache.find_whole ~dir ~key with
  | Artifact_cache.Hit cached ->
      Alcotest.(check int) "total insns" whole.Logger.total_insns
        cached.Logger.total_insns;
      check_pinball_equal "cached" whole.Logger.pinball cached.Logger.pinball
  | _ -> Alcotest.fail "expected Hit");
  (match Artifact_cache.read_manifest ~dir with
  | [ e ] ->
      Alcotest.(check string) "manifest key" key e.Artifact_cache.key;
      Alcotest.(check string) "manifest bench" "b.x" e.Artifact_cache.benchmark
  | l -> Alcotest.failf "manifest has %d entries" (List.length l));
  (* corrupt the entry: the next lookup quarantines it, then misses *)
  let data = read_file path in
  let broken = Bytes.of_string data in
  Bytes.set broken (String.length data - 10) '\xff';
  write_file path (Bytes.to_string broken);
  (match Artifact_cache.find_whole ~dir ~key with
  | Artifact_cache.Quarantined { path = qp; _ } ->
      Alcotest.(check bool) "entry moved aside" true
        (Sys.file_exists (qp ^ ".quarantined"));
      Alcotest.(check bool) "original gone" true (not (Sys.file_exists qp))
  | _ -> Alcotest.fail "expected Quarantined");
  Alcotest.(check bool) "miss after quarantine" true
    (Artifact_cache.find_whole ~dir ~key = Artifact_cache.Miss);
  (* re-store over the quarantine, then gc sweeps the residue *)
  ignore
    (Artifact_cache.store_whole ~dir ~key ~slice_insns:1000 ~slices_scale:0.5
       whole);
  write_file (Filename.concat dir "x.pb.tmp.1.2") "partial";
  let r = Artifact_cache.gc ~dir in
  Alcotest.(check int) "kept" 1 r.Artifact_cache.kept;
  Alcotest.(check int) "quarantined removed" 1 r.Artifact_cache.removed_quarantined;
  Alcotest.(check int) "tmp removed" 1 r.Artifact_cache.removed_tmp;
  Alcotest.(check int) "no corrupt left" 0 r.Artifact_cache.removed_corrupt;
  (match Artifact_cache.find_whole ~dir ~key with
  | Artifact_cache.Hit _ -> ()
  | _ -> Alcotest.fail "expected Hit after gc");
  rm_rf dir

(* Golden-bytes pin for the v2 encoder.  The encoding of a fixed
   pinball — int and float pages, recorded inputs, a region variant —
   is part of the compatibility contract: stored artifacts, both
   content-addressed caches and the fuzz corpus all assume the encoder
   never changes under a given format version.  Any legitimate format
   change must bump [Store.version] and re-pin these digests. *)
let golden_program =
  let a = Asm.create ~name:"golden" () in
  Asm.li a 1 0x2000;
  Asm.li a 2 30;
  Asm.fmovi a 1 1.5;
  let top = Asm.here a in
  Asm.sys a 0 3;
  Asm.alu a Add 4 4 3;
  Asm.store a 4 1 0;
  Asm.falu a Fadd 2 2 1;
  Asm.fstore a 2 1 512;
  Asm.alui a Add 1 1 8;
  Asm.alui a Sub 2 2 1;
  Asm.branch a Gt 2 15 top;
  Asm.halt a;
  Asm.assemble a

let test_golden_bytes () =
  let whole =
    Logger.log_whole ~syscall:(noisy_syscall 5) ~benchmark:"golden"
      golden_program
  in
  let digest pb = Digest.to_hex (Digest.string (Store.encode pb)) in
  Alcotest.(check string) "whole pinball bytes"
    "20ad27af6e5f01e188e3619bbbd2cc54"
    (digest whole.Logger.pinball);
  let regions =
    Logger.capture_regions whole [| mk_point 2 0 60 90 0.25 |]
  in
  Alcotest.(check string) "region pinball bytes"
    "900addee133ddfaf35f15181667099de"
    (digest regions.(0))

let test_describe () =
  let prog = sys_program ~iters:5 in
  let whole = Logger.log_whole ~benchmark:"b" prog in
  Alcotest.(check string) "whole" "b.whole"
    (Pinball.describe whole.Logger.pinball)

let suite =
  [
    Alcotest.test_case "log whole" `Quick test_log_whole;
    Alcotest.test_case "whole replay reproduces" `Quick test_whole_replay_reproduces;
    Alcotest.test_case "regional capture matches ground truth" `Quick
      test_regional_capture_matches_ground_truth;
    Alcotest.test_case "region syscall injection" `Quick test_region_syscall_injection;
    Alcotest.test_case "replay divergence" `Quick test_replay_divergence;
    Alcotest.test_case "scan matches capture" `Quick test_scan_matches_capture;
    Alcotest.test_case "scan warmup hooks" `Quick test_scan_warmup_hooks;
    Alcotest.test_case "scan warmup clamped" `Quick test_scan_warmup_clamped;
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store region roundtrip" `Quick test_store_region_roundtrip;
    Alcotest.test_case "store typed errors" `Quick test_store_errors;
    Alcotest.test_case "store fuzz whole (exhaustive)" `Quick test_store_fuzz_whole;
    Alcotest.test_case "store fuzz region (boundaries)" `Quick test_store_fuzz_region;
    Alcotest.test_case "store concurrent save" `Quick test_store_concurrent_save;
    Alcotest.test_case "artifact cache" `Quick test_artifact_cache;
    Alcotest.test_case "golden encoder bytes" `Quick test_golden_bytes;
    Alcotest.test_case "describe" `Quick test_describe;
  ]
