let () =
  Alcotest.run "specrepro"
    [
      ("util", Test_util.suite);
      ("isa", Test_isa.suite);
      ("vm", Test_vm.suite);
      ("cache", Test_cache.suite);
      ("pin", Test_pin.suite);
      ("simpoint", Test_simpoint.suite);
      ("pinball", Test_pinball.suite);
      ("workloads", Test_workloads.suite);
      ("cpu", Test_cpu.suite);
      ("perf", Test_perf.suite);
      ("core", Test_core.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("blockstep", Test_blockstep.suite);
      ("compiled", Test_compiled.suite);
      ("fusedcache", Test_fusedcache.suite);
      ("models", Test_models.suite);
      ("misc", Test_misc.suite);
      ("coverage", Test_coverage.suite);
      ("parallel", Test_parallel.suite);
      ("warmreplay", Test_warmreplay.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("cowmem", Test_cowmem.suite);
    ]
