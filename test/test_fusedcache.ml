(* Differential tests for the fused block-level cache tier and the
   bounds-pruned k-means.

   The fused allcache hook set ([Allcache_tool.hooks]) consumes
   [on_block_mems] segments and applies same-line / same-page repeat
   filters; the per-instruction set ([hooks_per_instr]) walks the
   hierarchy once per event.  Random memory-heavy programs are executed
   under both (and under the mixed engine, where a live per-instruction
   callback forces single-instruction segments); every cache level's
   statistics, both TLBs, prefetch and write-back counters and the
   retired instruction count must be bit-identical — across
   replacement policies, with and without the next-line prefetcher,
   across fuel-split boundaries landing mid-block, and across a
   warming prefix.

   The k-means half ports the original unpruned implementation
   (nested-array Lloyd iterations, linear-scan seeding draw) and
   requires [Kmeans.fit]'s pruned search to reproduce its assignment,
   sizes, centroids and distortion to the last bit. *)

open Sp_isa
open Sp_vm
open Sp_pin
open Sp_cache

(* ------------------------------------------------------------------ *)
(* Memory-heavy random programs: every terminator kind, plus a heavy
   dose of loads/stores/string-moves so the data-reference stream
   exercises line and page boundaries *)

let test_fuel = 400
let test_syscall n = ((n * 37) + 11) land 0xFF

let mem_prog_gen =
  QCheck.Gen.(
    int_range 4 40 >>= fun body_len ->
    let n = body_len + 1 in
    let target = int_range 0 (n - 1) in
    let reg = 0 -- 7 in
    (* bases both inside one page and spread across several *)
    let base = oneof [ int_range 0 256; int_range 0 20000 ] in
    let instr_gen =
      frequency
        [
          (3, map2 (fun rd imm -> Isa.Li (rd, imm)) reg base);
          ( 2,
            map3
              (fun op rd (r1, r2) -> Isa.Alu (op, rd, r1, r2))
              (oneofl [ Isa.Add; Isa.Sub; Isa.Xor ])
              reg (pair reg reg) );
          ( 4,
            map3
              (fun rd rs off -> Isa.Load (rd, rs, off * 8))
              reg reg (int_range 0 64) );
          ( 4,
            map3
              (fun rv rb off -> Isa.Store (rv, rb, off * 8))
              reg reg (int_range 0 64) );
          (2, map2 (fun rd rs -> Isa.Movs (rd, rs)) reg reg);
          ( 1,
            map3
              (fun fd rs off -> Isa.Fload (fd, rs, off * 8))
              (0 -- 7) reg (int_range 0 64) );
          ( 1,
            map3
              (fun fv rb off -> Isa.Fstore (fv, rb, off * 8))
              (0 -- 7) reg (int_range 0 64) );
          ( 2,
            map3
              (fun c (r1, r2) t -> Isa.Branch (c, r1, r2, t))
              (oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge ])
              (pair reg reg) target );
          (1, map (fun t -> Isa.Jump t) target);
          (1, map (fun t -> Isa.Call t) target);
          (1, return Isa.Ret);
          (1, map2 (fun ch rd -> Isa.Sys (ch, rd)) (0 -- 3) reg);
          (1, return Isa.Halt);
        ]
    in
    map
      (fun body -> Array.of_list (body @ [ Isa.Halt ]))
      (list_repeat body_len instr_gen))

(* ------------------------------------------------------------------ *)
(* One run of a program under one engine tier, with optional warming
   prefix and fuel-chunked resumption; everything observable about the
   cache simulation comes back in one comparable record *)

type tier = Fused | Per_instr | Mixed

type observed = {
  o_hier : Hierarchy.stats;
  o_itlb : Tlb.stats;
  o_dtlb : Tlb.stats;
  o_prefetches : int;
  o_writebacks : int * int * int;
  o_icount : int;
  o_outcome : int; (* 0 out-of-fuel, 1 halted, 2 stack error *)
}

let warm_fuel = 60

let run_tier tier ~policy ~prefetch ~warm ~chunk instrs =
  let p = Program.of_instrs instrs in
  let tool = Allcache_tool.create ~policy ~prefetch p in
  let hooks =
    match tier with
    | Fused -> Allcache_tool.hooks tool
    | Per_instr -> Allcache_tool.hooks_per_instr tool
    | Mixed ->
        (* a live on_instr keeps the set off the block tier, forcing
           single-instruction segment delivery of on_block_mems *)
        Hooks.seq (Allcache_tool.hooks tool)
          { Hooks.nil with Hooks.on_instr = (fun _ _ -> ()) }
  in
  let m = Interp.create ~entry:0 () in
  let outcome = ref 0 in
  (if warm then begin
     Allcache_tool.set_warming tool true;
     (try
        match Interp.run ~hooks ~syscall:test_syscall ~fuel:warm_fuel p m with
        | Interp.Halted -> outcome := 1
        | Interp.Out_of_fuel -> ()
      with Interp.Stack_error _ -> outcome := 2);
     Allcache_tool.set_warming tool false
   end);
  let left = ref test_fuel in
  (try
     while !left > 0 && !outcome = 0 do
       let f = min chunk !left in
       left := !left - f;
       match Interp.run ~hooks ~syscall:test_syscall ~fuel:f p m with
       | Interp.Halted -> outcome := 1
       | Interp.Out_of_fuel -> ()
     done
   with Interp.Stack_error _ -> outcome := 2);
  {
    o_hier = Allcache_tool.stats tool;
    o_itlb = Allcache_tool.itlb_stats tool;
    o_dtlb = Allcache_tool.dtlb_stats tool;
    o_prefetches = Allcache_tool.prefetches tool;
    o_writebacks = Hierarchy.writebacks (Allcache_tool.hierarchy tool);
    o_icount = m.Interp.icount;
    o_outcome = !outcome;
  }

let scenario_print (instrs, (policy, prefetch, warm), chunk) =
  Printf.sprintf "len=%d policy=%s prefetch=%b warm=%b chunk=%d"
    (Array.length instrs)
    (match policy with
    | Cache.Lru -> "lru"
    | Cache.Fifo -> "fifo"
    | Cache.Random -> "random")
    prefetch warm chunk

let scenario_gen =
  QCheck.Gen.(
    triple mem_prog_gen
      (triple (oneofl [ Cache.Lru; Cache.Fifo; Cache.Random ]) bool bool)
      (int_range 1 17))

let prop_fused_matches_per_instr =
  QCheck.Test.make
    ~name:"fused cache tier bit-identical to per-instruction tier"
    ~count:250
    (QCheck.make ~print:scenario_print scenario_gen)
    (fun (instrs, (policy, prefetch, warm), chunk) ->
      let f = run_tier Fused ~policy ~prefetch ~warm ~chunk instrs in
      let i = run_tier Per_instr ~policy ~prefetch ~warm ~chunk instrs in
      let x = run_tier Mixed ~policy ~prefetch ~warm ~chunk instrs in
      f = i && f = x)

(* ------------------------------------------------------------------ *)
(* Hand-checked absolute counts: both tiers must not merely agree with
   each other but with counts derivable from the ISA geometry (4-byte
   instructions, 32-byte lines, 4 kB pages, line-aligned code base) *)

let test_straightline_counts () =
  (* 40 straight Li + Halt = 41 fetches over 164 bytes = 6 lines, 1 page *)
  let instrs = Array.append (Array.make 40 (Isa.Li (0, 0))) [| Isa.Halt |] in
  List.iter
    (fun tier ->
      let o =
        run_tier tier ~policy:Cache.Lru ~prefetch:false ~warm:false ~chunk:1000
          instrs
      in
      Alcotest.(check int) "icount" 41 o.o_icount;
      Alcotest.(check int) "l1i accesses" 41 o.o_hier.Hierarchy.l1i.accesses;
      Alcotest.(check int) "l1i misses" 6 o.o_hier.Hierarchy.l1i.misses;
      Alcotest.(check int) "itlb accesses" 41 o.o_itlb.Tlb.accesses;
      Alcotest.(check int) "itlb walks" 1 o.o_itlb.Tlb.walks;
      Alcotest.(check int) "l1d accesses" 0 o.o_hier.Hierarchy.l1d.accesses)
    [ Fused; Per_instr; Mixed ]

let test_same_line_loads () =
  (* r0 = 0; five loads of address 0: one L1D line, one data page *)
  let instrs =
    Array.append
      (Array.append [| Isa.Li (0, 0) |] (Array.make 5 (Isa.Load (1, 0, 0))))
      [| Isa.Halt |]
  in
  List.iter
    (fun tier ->
      let o =
        run_tier tier ~policy:Cache.Lru ~prefetch:false ~warm:false ~chunk:1000
          instrs
      in
      Alcotest.(check int) "l1d accesses" 5 o.o_hier.Hierarchy.l1d.accesses;
      Alcotest.(check int) "l1d misses" 1 o.o_hier.Hierarchy.l1d.misses;
      Alcotest.(check int) "dtlb accesses" 5 o.o_dtlb.Tlb.accesses;
      Alcotest.(check int) "dtlb walks" 1 o.o_dtlb.Tlb.walks)
    [ Fused; Per_instr; Mixed ]

(* ------------------------------------------------------------------ *)
(* The report-level counters ride on Hierarchy.observe_stats; folding
   the two tiers' stats into the metrics registry must produce the
   same cache.* counter values *)

let cache_counter_names =
  [
    "cache.l1i.accesses"; "cache.l1i.misses";
    "cache.l1d.accesses"; "cache.l1d.misses";
    "cache.l2.accesses"; "cache.l2.misses";
    "cache.l3.accesses"; "cache.l3.misses";
  ]

let test_report_counters_identical () =
  let rng = Random.State.make [| 11 |] in
  let instrs = QCheck.Gen.generate1 ~rand:rng mem_prog_gen in
  let observe o =
    Sp_obs.Metrics.reset ();
    Hierarchy.observe_stats o.o_hier;
    let snap = Sp_obs.Metrics.stable_snapshot () in
    let vals =
      List.map (fun n -> Sp_obs.Metrics.counter_value snap n) cache_counter_names
    in
    Sp_obs.Metrics.reset ();
    vals
  in
  let f =
    run_tier Fused ~policy:Cache.Lru ~prefetch:false ~warm:false ~chunk:1000
      instrs
  in
  let i =
    run_tier Per_instr ~policy:Cache.Lru ~prefetch:false ~warm:false
      ~chunk:1000 instrs
  in
  List.iter2
    (fun a b ->
      Alcotest.(check (option (float 0.0))) "cache counter" a b)
    (observe f) (observe i)

(* ------------------------------------------------------------------ *)
(* Pruned k-means vs the original unpruned implementation.  This is a
   line-for-line port of the nested-array algorithm the library shipped
   before the flat/pruned rewrite: exhaustive nearest-centroid scans,
   linear accumulate-and-compare seeding draw.  [Kmeans.fit] must
   reproduce it exactly. *)

let sqd a b =
  let d = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let x = Array.unsafe_get a i -. Array.unsafe_get b i in
    d := !d +. (x *. x)
  done;
  !d

let naive_nearest centroids p =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun j c ->
      let d = sqd p c in
      if d < !best_d then begin
        best_d := d;
        best := j
      end)
    centroids;
  (!best, !best_d)

let naive_seed rng k points =
  let n = Array.length points in
  let centroids = Array.make k points.(0) in
  centroids.(0) <- points.(Sp_util.Rng.int rng n);
  let total = ref 0.0 in
  let d2 =
    Array.map
      (fun p ->
        let d = sqd p centroids.(0) in
        total := !total +. d;
        d)
      points
  in
  for j = 1 to k - 1 do
    let mass = Float.max 0.0 !total in
    let chosen =
      if mass <= 0.0 then Sp_util.Rng.int rng n
      else begin
        let target = Sp_util.Rng.float rng mass in
        let acc = ref 0.0 and pick = ref (n - 1) in
        (try
           for i = 0 to n - 1 do
             acc := !acc +. d2.(i);
             if !acc >= target then begin
               pick := i;
               raise Exit
             end
           done
         with Exit -> ());
        !pick
      end
    in
    centroids.(j) <- points.(chosen);
    for i = 0 to n - 1 do
      let d = sqd points.(i) centroids.(j) in
      if d < d2.(i) then begin
        total := !total -. (d2.(i) -. d);
        d2.(i) <- d
      end
    done
  done;
  Array.map Array.copy centroids

let naive_fit ~max_iters ~seed ~k points =
  let n = Array.length points in
  let k = min k n in
  let dim = Array.length points.(0) in
  let rng = Sp_util.Rng.create seed in
  let centroids = naive_seed rng k points in
  let assignment = Array.make n (-1) in
  let sizes = Array.make k 0 in
  let sums = Array.init k (fun _ -> Array.make dim 0.0) in
  let distortion = ref 0.0 in
  let changed = ref true in
  let iters = ref 0 in
  let best_j = Array.make n 0 in
  let best_d = Array.make n 0.0 in
  let search () =
    for i = 0 to n - 1 do
      let j, d = naive_nearest centroids points.(i) in
      best_j.(i) <- j;
      best_d.(i) <- d
    done
  in
  while !changed && !iters < max_iters do
    changed := false;
    incr iters;
    distortion := 0.0;
    Array.fill sizes 0 k 0;
    Array.iter (fun s -> Array.fill s 0 dim 0.0) sums;
    search ();
    for i = 0 to n - 1 do
      let j = best_j.(i) in
      if assignment.(i) <> j then begin
        assignment.(i) <- j;
        changed := true
      end;
      distortion := !distortion +. best_d.(i);
      sizes.(j) <- sizes.(j) + 1;
      let s = sums.(j) and p = points.(i) in
      for x = 0 to dim - 1 do
        s.(x) <- s.(x) +. p.(x)
      done
    done;
    for j = 0 to k - 1 do
      if sizes.(j) = 0 then begin
        let far = ref 0 and far_d = ref neg_infinity in
        for i = 0 to n - 1 do
          if best_d.(i) > !far_d then begin
            far_d := best_d.(i);
            far := i
          end
        done;
        centroids.(j) <- Array.copy points.(!far);
        changed := true
      end
      else begin
        let s = sums.(j) and inv = 1.0 /. float_of_int sizes.(j) in
        centroids.(j) <- Array.map (fun x -> x *. inv) s
      end
    done
  done;
  Array.fill sizes 0 k 0;
  distortion := 0.0;
  search ();
  for i = 0 to n - 1 do
    let j = best_j.(i) in
    assignment.(i) <- j;
    sizes.(j) <- sizes.(j) + 1;
    distortion := !distortion +. best_d.(i)
  done;
  (assignment, Array.copy sizes, centroids, !distortion)

let bits = Int64.bits_of_float

let results_equal (a0, s0, c0, d0) (r : Sp_simpoint.Kmeans.result) =
  a0 = r.Sp_simpoint.Kmeans.assignment
  && s0 = r.Sp_simpoint.Kmeans.sizes
  && bits d0 = bits r.Sp_simpoint.Kmeans.distortion
  && Array.length c0 = Array.length r.Sp_simpoint.Kmeans.centroids
  && Array.for_all2
       (fun x y -> Array.for_all2 (fun a b -> bits a = bits b) x y)
       c0 r.Sp_simpoint.Kmeans.centroids

(* coordinates from a tiny pool force duplicate points and exact
   distance ties — the regime where a sloppy pruning bound or a
   scan-order change would flip the argmin *)
let points_gen =
  QCheck.Gen.(
    pair (int_range 1 50) (int_range 1 8) >>= fun (n, dim) ->
    let coord =
      oneof
        [
          float_bound_inclusive 1.0;
          oneofl [ 0.0; 0.25; 0.5; 1.0 ];
        ]
    in
    array_repeat n (array_repeat dim coord))

let kmeans_case_print (points, k, max_iters, seed) =
  Printf.sprintf "n=%d dim=%d k=%d iters=%d seed=%d" (Array.length points)
    (Array.length points.(0))
    k max_iters seed

let prop_kmeans_matches_naive =
  QCheck.Test.make ~name:"pruned k-means bit-identical to unpruned fit"
    ~count:150
    (QCheck.make ~print:kmeans_case_print
       QCheck.Gen.(
         quad points_gen (int_range 1 14) (oneofl [ 1; 3; 8 ])
           (int_range 0 5)))
    (fun (points, k, max_iters, seed) ->
      let expected = naive_fit ~max_iters ~seed ~k points in
      let got1 = Sp_simpoint.Kmeans.fit ~max_iters ~seed ~jobs:1 ~k points in
      let got3 = Sp_simpoint.Kmeans.fit ~max_iters ~seed ~jobs:3 ~k points in
      results_equal expected got1 && results_equal expected got3)

let test_kmeans_k_exceeds_n () =
  (* k clamps to n; every point becomes its own centroid *)
  let points = [| [| 0.0; 1.0 |]; [| 2.0; 3.0 |]; [| 4.0; 5.0 |] |] in
  let expected = naive_fit ~max_iters:5 ~seed:1 ~k:9 points in
  let got = Sp_simpoint.Kmeans.fit ~max_iters:5 ~seed:1 ~k:9 points in
  Alcotest.(check bool) "k>n identical" true (results_equal expected got);
  Alcotest.(check int) "k clamped" 3 got.Sp_simpoint.Kmeans.k

let test_kmeans_identical_points () =
  (* all-duplicate input: seeding mass collapses to zero, every
     distance ties at 0 *)
  let points = Array.make 12 [| 0.5; 0.5; 0.5 |] in
  let expected = naive_fit ~max_iters:4 ~seed:3 ~k:4 points in
  let got = Sp_simpoint.Kmeans.fit ~max_iters:4 ~seed:3 ~k:4 points in
  Alcotest.(check bool) "duplicates identical" true (results_equal expected got)

(* ------------------------------------------------------------------ *)
(* Seeding draw: binary-searched prefix pick vs the linear scan *)

let prop_weighted_pick =
  QCheck.Test.make ~name:"weighted_pick matches linear scan" ~count:300
    (QCheck.make
       ~print:(fun (ws, t) ->
         Printf.sprintf "n=%d target=%f" (Array.length ws) t)
       QCheck.Gen.(
         pair
           (array_size (1 -- 40) (float_bound_inclusive 10.0))
           (float_bound_inclusive 1.2)))
    (fun (weights, tfrac) ->
      let n = Array.length weights in
      let prefix = Array.make n 0.0 in
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. weights.(i);
        prefix.(i) <- !acc
      done;
      let target = tfrac *. !acc in
      let linear =
        let pick = ref (n - 1) in
        (try
           for i = 0 to n - 1 do
             if prefix.(i) >= target then begin
               pick := i;
               raise Exit
             end
           done
         with Exit -> ());
        !pick
      in
      Sp_simpoint.Kmeans.weighted_pick prefix target = linear)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fused_matches_per_instr;
    Alcotest.test_case "straightline fetch counts" `Quick
      test_straightline_counts;
    Alcotest.test_case "same-line load counts" `Quick test_same_line_loads;
    Alcotest.test_case "report counters identical across tiers" `Quick
      test_report_counters_identical;
    QCheck_alcotest.to_alcotest prop_kmeans_matches_naive;
    Alcotest.test_case "k exceeds n" `Quick test_kmeans_k_exceeds_n;
    Alcotest.test_case "identical points" `Quick test_kmeans_identical_points;
    QCheck_alcotest.to_alcotest prop_weighted_pick;
  ]
