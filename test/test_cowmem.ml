(* Differential tests for the zero-copy artifact hot path: COW memory
   snapshots, the shared in-memory decoded-artifact cache, and the
   speculative BIC probes in point selection.  Everything here checks
   bit-identity against the eager deep-copy / sequential behaviour. *)

open Specrepro

let page_words = Sp_vm.Memory.page_bytes / Sp_vm.Memory.word_bytes

(* word-aligned byte address of word [w] *)
let addr w = w * Sp_vm.Memory.word_bytes

(* a memory with several int and float pages populated *)
let populated () =
  let m = Sp_vm.Memory.create () in
  for w = 0 to (3 * page_words) + 7 do
    Sp_vm.Memory.store m (addr w) ((w * 2654435761) lxor 0x5DEECE66D);
    Sp_vm.Memory.storef m (addr w) (float_of_int w *. 1.25)
  done;
  m

(* ------------------------------------------------------------------ *)
(* COW isolation *)

let test_cow_isolation () =
  let m = populated () in
  let c1 = Sp_vm.Memory.cow_clone m in
  let c2 = Sp_vm.Memory.cow_clone m in
  let before_m = Sp_vm.Memory.load m (addr 5) in
  let before_f = Sp_vm.Memory.loadf m (addr 5) in
  (* a clone's writes — to a shared page and to a fresh page — must not
     leak into the source or a sibling clone *)
  Sp_vm.Memory.store c1 (addr 5) 12345;
  Sp_vm.Memory.storef c1 (addr 5) 9.75;
  Sp_vm.Memory.store c1 (addr (100 * page_words)) 777;
  Alcotest.(check int) "c1 sees its int write" 12345
    (Sp_vm.Memory.load c1 (addr 5));
  Alcotest.(check (float 0.0)) "c1 sees its float write" 9.75
    (Sp_vm.Memory.loadf c1 (addr 5));
  Alcotest.(check int) "source unaffected" before_m
    (Sp_vm.Memory.load m (addr 5));
  Alcotest.(check (float 0.0)) "source float unaffected" before_f
    (Sp_vm.Memory.loadf m (addr 5));
  Alcotest.(check int) "sibling unaffected" before_m
    (Sp_vm.Memory.load c2 (addr 5));
  Alcotest.(check int) "fresh page private" 0
    (Sp_vm.Memory.load c2 (addr (100 * page_words)));
  (* the frozen source privatises on write too: its writes must not
     reach the clones *)
  Sp_vm.Memory.store m (addr 6) (-42);
  Alcotest.(check bool) "clone misses source write" true
    (Sp_vm.Memory.load c2 (addr 6) <> -42)

let test_cow_tlb_no_writethrough () =
  (* regression for the frozen-page TLB hazard: a load caches the page
     in the TLB; a store to the same page immediately after must still
     privatise rather than write through the cached frozen pointer *)
  let m = populated () in
  let c = Sp_vm.Memory.cow_clone m in
  let before = Sp_vm.Memory.load m (addr 9) in
  ignore (Sp_vm.Memory.load c (addr 9)); (* warm c's TLB on the shared page *)
  Sp_vm.Memory.store c (addr 9) 31337;
  Alcotest.(check int) "clone write landed" 31337 (Sp_vm.Memory.load c (addr 9));
  Alcotest.(check int) "shared page intact" before
    (Sp_vm.Memory.load m (addr 9));
  (* same hazard on the float view *)
  let beforef = Sp_vm.Memory.loadf m (addr 9) in
  ignore (Sp_vm.Memory.loadf c (addr 9));
  Sp_vm.Memory.storef c (addr 9) 2.5;
  Alcotest.(check (float 0.0)) "float shared page intact" beforef
    (Sp_vm.Memory.loadf m (addr 9))

(* ------------------------------------------------------------------ *)
(* serialisation byte-identity: COW views encode exactly like deep
   copies, before and after mutation *)

let encode m =
  let b = Buffer.create 4096 in
  Sp_vm.Memory.write b m;
  Buffer.contents b

let test_cow_serialise_identical () =
  let m = populated () in
  let golden = encode m in
  let deep = Sp_vm.Memory.copy m in
  let cow = Sp_vm.Memory.cow_clone m in
  Alcotest.(check bool) "pristine clone encodes identically" true
    (encode cow = golden);
  (* identical mutations: overwrite shared pages, touch new ones *)
  let mutate mm =
    Sp_vm.Memory.store mm (addr 3) 11;
    Sp_vm.Memory.store mm (addr (page_words + 1)) 22;
    Sp_vm.Memory.store mm (addr (50 * page_words)) 33;
    Sp_vm.Memory.storef mm (addr 3) 4.5;
    Sp_vm.Memory.storef mm (addr (60 * page_words)) 6.5
  in
  mutate deep;
  mutate cow;
  Alcotest.(check bool) "mutated clone = mutated deep copy" true
    (encode cow = encode deep);
  Alcotest.(check bool) "frozen source still pristine" true
    (encode m = golden);
  Alcotest.(check int) "same footprint" (Sp_vm.Memory.footprint_bytes deep)
    (Sp_vm.Memory.footprint_bytes cow)

let test_snapshot_restore_isolated () =
  let mach = Sp_vm.Interp.create ~entry:0 () in
  for w = 0 to (2 * page_words) + 3 do
    Sp_vm.Memory.store mach.Sp_vm.Interp.mem (addr w) (w * 7)
  done;
  mach.Sp_vm.Interp.regs.(3) <- 99;
  let snap = Sp_vm.Snapshot.capture mach in
  let golden = encode mach.Sp_vm.Interp.mem in
  let a = Sp_vm.Snapshot.restore snap in
  let b = Sp_vm.Snapshot.restore snap in
  Sp_vm.Memory.store a.Sp_vm.Interp.mem (addr 2) (-1);
  Alcotest.(check int) "sibling restore unaffected" 14
    (Sp_vm.Memory.load b.Sp_vm.Interp.mem (addr 2));
  (* capturing after the source kept running must not dirty the old
     snapshot, and restores after mutation still match the original *)
  Sp_vm.Memory.store mach.Sp_vm.Interp.mem (addr 2) (-2);
  let c = Sp_vm.Snapshot.restore snap in
  Alcotest.(check bool) "late restore encodes the captured image" true
    (encode c.Sp_vm.Interp.mem = golden);
  Alcotest.(check int) "registers copied" 99 c.Sp_vm.Interp.regs.(3)

(* ------------------------------------------------------------------ *)
(* Mem_cache unit behaviour *)

let mib = 1024 * 1024

let test_mem_cache_disabled () =
  let pool = Sp_pinball.Mem_cache.create_pool () in
  let c = Sp_pinball.Mem_cache.create pool in
  Sp_pinball.Mem_cache.add c "k" ~bytes:10 "v";
  Alcotest.(check (option string)) "budget 0: adds drop" None
    (Sp_pinball.Mem_cache.find c "k");
  Sp_pinball.Mem_cache.set_budget_mb pool 1;
  Sp_pinball.Mem_cache.add c "k" ~bytes:10 "v";
  Alcotest.(check (option string)) "enabled: hit" (Some "v")
    (Sp_pinball.Mem_cache.find c "k");
  Sp_pinball.Mem_cache.set_budget_mb pool 0;
  Alcotest.(check (option string)) "re-disabled: finds miss" None
    (Sp_pinball.Mem_cache.find c "k")

let test_mem_cache_lru_eviction () =
  let pool = Sp_pinball.Mem_cache.create_pool () in
  Sp_pinball.Mem_cache.set_budget_mb pool 1;
  let c = Sp_pinball.Mem_cache.create pool in
  let chunk = 400 * 1024 in
  Sp_pinball.Mem_cache.add c "a" ~bytes:chunk "A";
  Sp_pinball.Mem_cache.add c "b" ~bytes:chunk "B";
  (* a third 400K entry overflows the 1 MiB budget: the LRU entry (a)
     goes *)
  Sp_pinball.Mem_cache.add c "c" ~bytes:chunk "C";
  Alcotest.(check (option string)) "LRU evicted" None
    (Sp_pinball.Mem_cache.find c "a");
  Alcotest.(check (option string)) "b kept" (Some "B")
    (Sp_pinball.Mem_cache.find c "b");
  (* the find above refreshed b, so the next eviction takes c *)
  Sp_pinball.Mem_cache.add c "d" ~bytes:chunk "D";
  Alcotest.(check (option string)) "recency respected" (Some "B")
    (Sp_pinball.Mem_cache.find c "b");
  Alcotest.(check (option string)) "stale entry evicted" None
    (Sp_pinball.Mem_cache.find c "c")

let test_mem_cache_pool_shared_budget () =
  (* two differently-typed members draw on one budget; eviction is
     LRU across the whole pool *)
  let pool = Sp_pinball.Mem_cache.create_pool () in
  Sp_pinball.Mem_cache.set_budget_mb pool 1;
  let strings = Sp_pinball.Mem_cache.create pool in
  let ints : int Sp_pinball.Mem_cache.t = Sp_pinball.Mem_cache.create pool in
  let chunk = 400 * 1024 in
  Sp_pinball.Mem_cache.add strings "s1" ~bytes:chunk "S1";
  Sp_pinball.Mem_cache.add ints "i1" ~bytes:chunk 1;
  Sp_pinball.Mem_cache.add ints "i2" ~bytes:chunk 2;
  Alcotest.(check (option string)) "cross-member eviction" None
    (Sp_pinball.Mem_cache.find strings "s1");
  Alcotest.(check (option int)) "other member survives" (Some 1)
    (Sp_pinball.Mem_cache.find ints "i1");
  (* oversized entries are dropped silently, evicting nothing *)
  Sp_pinball.Mem_cache.add strings "huge" ~bytes:(2 * mib) "H";
  Alcotest.(check (option string)) "oversized dropped" None
    (Sp_pinball.Mem_cache.find strings "huge");
  Alcotest.(check (option int)) "nothing evicted for it" (Some 2)
    (Sp_pinball.Mem_cache.find ints "i2");
  (* clear releases the member's bytes back to the pool *)
  Sp_pinball.Mem_cache.clear ints;
  Alcotest.(check (option int)) "cleared" None
    (Sp_pinball.Mem_cache.find ints "i1");
  Sp_pinball.Mem_cache.add strings "s2" ~bytes:(2 * chunk) "S2";
  Alcotest.(check (option string)) "freed budget reusable" (Some "S2")
    (Sp_pinball.Mem_cache.find strings "s2")

let test_mem_cache_replace () =
  let pool = Sp_pinball.Mem_cache.create_pool () in
  Sp_pinball.Mem_cache.set_budget_mb pool 1;
  let c = Sp_pinball.Mem_cache.create pool in
  (* re-adding a key replaces value and charge rather than double
     counting: two replacements at ~budget-size would otherwise
     overflow the pool and evict the entry itself *)
  Sp_pinball.Mem_cache.add c "k" ~bytes:(600 * 1024) "old";
  Sp_pinball.Mem_cache.add c "k" ~bytes:(600 * 1024) "new";
  Alcotest.(check (option string)) "replaced" (Some "new")
    (Sp_pinball.Mem_cache.find c "k")

(* ------------------------------------------------------------------ *)
(* pipeline parity: jobs 1 vs 4 with disk caches + mem cache live *)

let temp_dir () =
  let d = Filename.temp_file "spcowmem" "" in
  Sys.remove d;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let stable_counters () =
  Sp_obs.Metrics.stable_snapshot ()
  |> List.filter_map (fun (s : Sp_obs.Metrics.sample) ->
         match s.Sp_obs.Metrics.value with
         | Sp_obs.Metrics.Counter_value v -> Some (s.Sp_obs.Metrics.name, v)
         | _ -> None)

let test_pipeline_jobs_parity_with_mem_cache () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let spec = Sp_workloads.Suite.find "648.exchange2_s" in
  let options jobs =
    {
      Pipeline.default_options with
      slices_scale = 0.05;
      progress = false;
      collect_variance = false;
      pinball_cache = Some dir;
      profile_cache = Some dir;
      mem_cache_mb = 64;
      jobs;
    }
  in
  let fingerprint (r : Pipeline.bench_result) =
    ( r.Pipeline.whole_insns,
      r.Pipeline.selection.chosen_k,
      Array.map
        (fun (p : Sp_simpoint.Simpoints.point) -> (p.slice_index, p.weight))
        r.Pipeline.selection.points,
      (Pipeline.regional r).Runstats.cpi,
      (Pipeline.warmup_regional r).Runstats.l3_miss )
  in
  (* cold run populates the disk caches *)
  let cold = fingerprint (Pipeline.run_benchmark ~options:(options 1) spec) in
  (* warm runs from a cold mem cache: identical results and identical
     stable metrics at any job count *)
  let warm jobs =
    Sp_pinball.Artifact_cache.clear_mem ();
    Sp_pinball.Profile_store.clear_mem ();
    Sp_obs.Metrics.reset ();
    let r = Pipeline.run_benchmark ~options:(options jobs) spec in
    (fingerprint r, stable_counters ())
  in
  let fp1, stable1 = warm 1 in
  let fp4, stable4 = warm 4 in
  Alcotest.(check bool) "warm jobs=1 matches cold" true (fp1 = cold);
  Alcotest.(check bool) "results bit-identical jobs 1 vs 4" true (fp1 = fp4);
  Alcotest.(check bool) "stable metrics identical jobs 1 vs 4" true
    (stable1 = stable4);
  (* a second warm run in the same process is served from memory *)
  Sp_obs.Metrics.reset ();
  let fp_mem = fingerprint (Pipeline.run_benchmark ~options:(options 4) spec) in
  Alcotest.(check bool) "mem-cache run bit-identical" true (fp_mem = cold);
  let hits =
    Sp_obs.Metrics.counter_value (Sp_obs.Metrics.snapshot ())
      "pbcache.mem_hits"
  in
  Alcotest.(check bool) "mem cache actually hit" true
    (match hits with Some h -> h > 0.0 | None -> false);
  Sp_obs.Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* speculative BIC probes: selection output is bit-identical at any
   job count even though jobs>1 precomputes fits the search may never
   demand *)

let test_speculative_select_parity () =
  let rng = Sp_util.Rng.create 23 in
  let slices =
    Array.init 120 (fun i ->
        let p = i mod 4 in
        let jitter b = max 1 (b + Sp_util.Rng.int rng 5) in
        {
          Sp_pin.Bbv_tool.index = i;
          start_icount = i * 100;
          length = 100;
          bbv =
            [|
              ((10 * p), jitter 60);
              ((10 * p) + 1, jitter 30);
              ((10 * p) + 2, jitter 10);
            |];
        })
  in
  let select jobs =
    Sp_simpoint.Simpoints.select
      ~config:{ Sp_simpoint.Simpoints.default_config with jobs }
      ~slice_len:100 slices
  in
  let seq = select 1 in
  let par = select 4 in
  Alcotest.(check int) "chosen_k identical" seq.Sp_simpoint.Simpoints.chosen_k
    par.Sp_simpoint.Simpoints.chosen_k;
  Alcotest.(check bool) "points identical" true
    (seq.Sp_simpoint.Simpoints.points = par.Sp_simpoint.Simpoints.points);
  Alcotest.(check bool) "assignment identical" true
    (seq.Sp_simpoint.Simpoints.assignment
    = par.Sp_simpoint.Simpoints.assignment);
  (* the BIC curve is built from demanded ks only, so speculative
     warming must be invisible in it *)
  Alcotest.(check bool) "bic curve identical" true
    (seq.Sp_simpoint.Simpoints.bic_curve = par.Sp_simpoint.Simpoints.bic_curve)

let suite =
  [
    Alcotest.test_case "cow isolation" `Quick test_cow_isolation;
    Alcotest.test_case "cow tlb no write-through" `Quick
      test_cow_tlb_no_writethrough;
    Alcotest.test_case "cow serialise byte-identical" `Quick
      test_cow_serialise_identical;
    Alcotest.test_case "snapshot restore isolated" `Quick
      test_snapshot_restore_isolated;
    Alcotest.test_case "mem cache disabled" `Quick test_mem_cache_disabled;
    Alcotest.test_case "mem cache lru eviction" `Quick
      test_mem_cache_lru_eviction;
    Alcotest.test_case "mem cache shared pool" `Quick
      test_mem_cache_pool_shared_budget;
    Alcotest.test_case "mem cache replace" `Quick test_mem_cache_replace;
    Alcotest.test_case "pipeline jobs parity with mem cache" `Quick
      test_pipeline_jobs_parity_with_mem_cache;
    Alcotest.test_case "speculative select parity" `Quick
      test_speculative_select_parity;
  ]
