(* Differential tests for the block-stepping execution engine.

   A per-instruction reference interpreter lives in this file, written
   against the ISA documentation and independent of lib/vm/interp.ml
   (its own memory model, its own leader/block computation).  Random
   programs exercising every terminator kind — fallthrough, conditional
   branch, jump, call, ret, halt — plus self-loops, mid-block syscalls
   and slice boundaries that land mid-block are executed by the
   reference and by the real engine tiers; icount, final machine state,
   memory, hook traces, BBV slices and syscall observation points must
   match bit-for-bit, for any fuel split. *)

open Sp_isa
open Sp_vm
open Sp_pin

(* ------------------------------------------------------------------ *)
(* Reference interpreter *)

exception Ref_stack of string

type ref_outcome = R_halted | R_fuel | R_stack of string

type ref_state = {
  r_regs : int array;
  r_fregs : float array;
  mutable r_pc : int;
  r_stack : int array;
  mutable r_sp : int;
  r_mem : (int, int) Hashtbl.t;
  r_fmem : (int, float) Hashtbl.t;
  mutable r_icount : int;
}

let ref_create entry =
  {
    r_regs = Array.make Isa.num_regs 0;
    r_fregs = Array.make Isa.num_fregs 0.0;
    r_pc = entry;
    r_stack = Array.make 4096 0;
    r_sp = 0;
    r_mem = Hashtbl.create 64;
    r_fmem = Hashtbl.create 64;
    r_icount = 0;
  }

(* same 38-bit word addressing the documented Memory module uses *)
let word addr = (addr land ((1 lsl 38) - 1)) lsr 3
let rload st a = Option.value ~default:0 (Hashtbl.find_opt st.r_mem (word a))
let rstore st a v = Hashtbl.replace st.r_mem (word a) v

let rloadf st a =
  Option.value ~default:0.0 (Hashtbl.find_opt st.r_fmem (word a))

let rstoref st a v = Hashtbl.replace st.r_fmem (word a) v

(* leaders and block ids recomputed from the ISA documentation alone:
   a leader is the entry, a static control-transfer target, or the
   instruction after a control instruction *)
let ref_structure instrs =
  let n = Array.length instrs in
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun pc i ->
      match i with
      | Isa.Branch (_, _, _, t) | Isa.Jump t | Isa.Call t ->
          leader.(t) <- true;
          if pc + 1 < n then leader.(pc + 1) <- true
      | Isa.Ret | Isa.Halt -> if pc + 1 < n then leader.(pc + 1) <- true
      | _ -> ())
    instrs;
  let bb_of_pc = Array.make n 0 in
  let id = ref (-1) in
  for pc = 0 to n - 1 do
    if leader.(pc) then incr id;
    bb_of_pc.(pc) <- !id
  done;
  (leader, bb_of_pc)

type ev =
  | E_block of int
  | E_instr of int * int (* pc, kind code *)
  | E_read of int
  | E_write of int
  | E_branch of int * bool

let ref_alu op a b =
  match (op : Isa.alu_op) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)

let ref_falu op a b =
  match (op : Isa.falu_op) with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> if b = 0.0 then 0.0 else a /. b

let ref_cond c a b =
  match (c : Isa.cond) with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let ref_run ~record ~syscall ~fuel instrs (st : ref_state) =
  let is_leader, bb_of_pc = ref_structure instrs in
  let outcome = ref R_fuel in
  (try
     let remaining = ref fuel in
     let running = ref (fuel > 0) in
     while !running do
       let pc = st.r_pc in
       if is_leader.(pc) then record (E_block bb_of_pc.(pc));
       record (E_instr (pc, Isa.kind_code (Isa.kind instrs.(pc))));
       st.r_icount <- st.r_icount + 1;
       decr remaining;
       (match instrs.(pc) with
       | Isa.Alu (op, rd, r1, r2) ->
           st.r_regs.(rd) <- ref_alu op st.r_regs.(r1) st.r_regs.(r2);
           st.r_pc <- pc + 1
       | Isa.Alui (op, rd, r1, imm) ->
           st.r_regs.(rd) <- ref_alu op st.r_regs.(r1) imm;
           st.r_pc <- pc + 1
       | Isa.Li (rd, imm) ->
           st.r_regs.(rd) <- imm;
           st.r_pc <- pc + 1
       | Isa.Mov (rd, rs) ->
           st.r_regs.(rd) <- st.r_regs.(rs);
           st.r_pc <- pc + 1
       | Isa.Load (rd, rs, off) ->
           let a = st.r_regs.(rs) + off in
           record (E_read a);
           st.r_regs.(rd) <- rload st a;
           st.r_pc <- pc + 1
       | Isa.Store (rv, rb, off) ->
           let a = st.r_regs.(rb) + off in
           record (E_write a);
           rstore st a st.r_regs.(rv);
           st.r_pc <- pc + 1
       | Isa.Movs (rdst, rsrc) ->
           let src = st.r_regs.(rsrc) in
           let dst = st.r_regs.(rdst) in
           record (E_read src);
           record (E_write dst);
           rstore st dst (rload st src);
           st.r_pc <- pc + 1
       | Isa.Falu (op, fd, f1, f2) ->
           st.r_fregs.(fd) <- ref_falu op st.r_fregs.(f1) st.r_fregs.(f2);
           st.r_pc <- pc + 1
       | Isa.Fload (fd, rs, off) ->
           let a = st.r_regs.(rs) + off in
           record (E_read a);
           st.r_fregs.(fd) <- rloadf st a;
           st.r_pc <- pc + 1
       | Isa.Fstore (fv, rb, off) ->
           let a = st.r_regs.(rb) + off in
           record (E_write a);
           rstoref st a st.r_fregs.(fv);
           st.r_pc <- pc + 1
       | Isa.Fmovi (fd, x) ->
           st.r_fregs.(fd) <- x;
           st.r_pc <- pc + 1
       | Isa.Cvtif (fd, rs) ->
           st.r_fregs.(fd) <- float_of_int st.r_regs.(rs);
           st.r_pc <- pc + 1
       | Isa.Cvtfi (rd, fs) ->
           st.r_regs.(rd) <- int_of_float st.r_fregs.(fs);
           st.r_pc <- pc + 1
       | Isa.Branch (c, r1, r2, target) ->
           let taken = ref_cond c st.r_regs.(r1) st.r_regs.(r2) in
           record (E_branch (pc, taken));
           st.r_pc <- (if taken then target else pc + 1)
       | Isa.Jump target -> st.r_pc <- target
       | Isa.Call target ->
           if st.r_sp >= 4096 then
             raise
               (Ref_stack (Printf.sprintf "call-stack overflow at pc %d" pc));
           st.r_stack.(st.r_sp) <- pc + 1;
           st.r_sp <- st.r_sp + 1;
           st.r_pc <- target
       | Isa.Ret ->
           if st.r_sp <= 0 then
             raise
               (Ref_stack (Printf.sprintf "ret on empty stack at pc %d" pc));
           st.r_sp <- st.r_sp - 1;
           st.r_pc <- st.r_stack.(st.r_sp)
       | Isa.Sys (n, rd) ->
           st.r_regs.(rd) <- syscall n;
           st.r_pc <- pc + 1
       | Isa.Halt ->
           st.r_pc <- pc;
           outcome := R_halted;
           running := false);
       if !remaining <= 0 then running := false
     done
   with Ref_stack msg -> outcome := R_stack msg);
  !outcome

(* ------------------------------------------------------------------ *)
(* Random program generator: every terminator kind, self-loops allowed *)

let test_fuel = 300

let prog_gen =
  QCheck.Gen.(
    int_range 4 40 >>= fun body_len ->
    let n = body_len + 1 in
    (* final Halt backstop keeps every pc reachable in-range *)
    let target = int_range 0 (n - 1) in
    let reg = 0 -- 7 in
    let freg = 0 -- 7 in
    let instr_gen =
      frequency
        [
          (3, map2 (fun rd imm -> Isa.Li (rd, imm)) reg (int_range (-64) 64));
          ( 3,
            map3
              (fun op rd (r1, r2) -> Isa.Alu (op, rd, r1, r2))
              (oneofl [ Isa.Add; Isa.Sub; Isa.Xor ])
              reg (pair reg reg) );
          ( 2,
            map3
              (fun rd rs off -> Isa.Load (rd, rs, off * 8))
              reg reg (int_range 0 32) );
          ( 2,
            map3
              (fun rv rb off -> Isa.Store (rv, rb, off * 8))
              reg reg (int_range 0 32) );
          ( 1,
            map2
              (fun fd x -> Isa.Fmovi (fd, float_of_int x))
              freg (int_range (-16) 16) );
          ( 1,
            map3
              (fun op fd (f1, f2) -> Isa.Falu (op, fd, f1, f2))
              (oneofl [ Isa.Fadd; Isa.Fmul ])
              freg (pair freg freg) );
          ( 1,
            map3
              (fun fd rs off -> Isa.Fload (fd, rs, off * 8))
              freg reg (int_range 0 32) );
          ( 1,
            map3
              (fun fv rb off -> Isa.Fstore (fv, rb, off * 8))
              freg reg (int_range 0 32) );
          ( 2,
            map3
              (fun c (r1, r2) t -> Isa.Branch (c, r1, r2, t))
              (oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge ])
              (pair reg reg) target );
          (1, map (fun t -> Isa.Jump t) target);
          (1, map (fun t -> Isa.Call t) target);
          (1, return Isa.Ret);
          (1, map2 (fun ch rd -> Isa.Sys (ch, rd)) (0 -- 3) reg);
          (1, return Isa.Halt);
        ]
    in
    map
      (fun body -> Array.of_list (body @ [ Isa.Halt ]))
      (list_repeat body_len instr_gen))

let test_syscall n = ((n * 37) + 11) land 0xFF

(* ------------------------------------------------------------------ *)
(* Helpers over the real engines *)

(* This suite targets the block-stepping tier, so every run is pinned
   to [Block_step] — under [Auto] the interpreter now routes block-level
   hook sets to the compiled tier (covered by test_compiled.ml), which
   would silently drop [run_block] from coverage.  Sets with live
   per-instruction hooks keep the per-instruction engine regardless of
   the pin. *)
let run_engine ~hooks ~syscall ~fuel p m =
  try
    match Interp.run ~engine:Interp.Block_step ~hooks ~syscall ~fuel p m with
    | Interp.Halted -> R_halted
    | Interp.Out_of_fuel -> R_fuel
  with Interp.Stack_error msg -> R_stack msg

let expand_block_exec entries =
  List.concat_map (fun (bb, n) -> List.init n (fun _ -> bb)) entries

let retire_stream_of_events bb_of_pc events =
  List.filter_map
    (function E_instr (pc, _) -> Some bb_of_pc.(pc) | _ -> None)
    events

let write_addrs events =
  List.filter_map (function E_write a -> Some a | _ -> None) events

let state_matches (st : ref_state) (m : Interp.machine) events =
  Array.for_all2 ( = ) st.r_regs m.Interp.regs
  && Array.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       st.r_fregs m.Interp.fregs
  && st.r_pc = m.Interp.pc
  && st.r_sp = m.Interp.sp
  && st.r_icount = m.Interp.icount
  && List.for_all
       (fun a ->
         rload st a = Memory.load m.Interp.mem a
         && Int64.bits_of_float (rloadf st a)
            = Int64.bits_of_float (Memory.loadf m.Interp.mem a))
       (write_addrs events)

(* ------------------------------------------------------------------ *)
(* Program metadata consistency: block table vs a naive recomputation *)

let metadata_consistent instrs (p : Program.t) =
  let leaders, bb_of_pc = ref_structure instrs in
  Array.for_all2 ( = ) leaders p.Program.is_leader
  && Array.for_all2 ( = ) bb_of_pc p.Program.bb_of_pc
  && Array.for_all
       (fun (b : Program.block) ->
         let last = instrs.(b.start_pc + b.len - 1) in
         let term_ok =
           match (last, b.term) with
           | Isa.Branch _, Program.Cond_branch -> true
           | Isa.Jump _, Program.Jump -> true
           | Isa.Call _, Program.Call -> true
           | Isa.Ret, Program.Ret -> true
           | Isa.Halt, Program.Halt -> true
           | i, Program.Fallthrough -> not (Isa.is_control i)
           | _ -> false
         in
         let counted = Array.make Isa.num_kinds 0 in
         for pc = b.start_pc to b.start_pc + b.len - 1 do
           let k = Isa.kind_code (Isa.kind instrs.(pc)) in
           counted.(k) <- counted.(k) + 1
         done;
         term_ok
         && p.Program.block_end.(b.id) = b.start_pc + b.len
         && Array.fold_left ( + ) 0 b.kind_counts = b.len
         && Array.for_all2 ( = ) counted b.kind_counts)
       p.Program.blocks

(* ------------------------------------------------------------------ *)
(* Main differential property *)

let prop_engines_agree =
  QCheck.Test.make ~name:"engines agree with reference interpreter"
    ~count:400 (QCheck.make prog_gen) (fun instrs ->
      let p = Program.of_instrs instrs in
      if not (metadata_consistent instrs p) then false
      else begin
        let _, bb_of_pc = ref_structure instrs in
        (* reference *)
        let st = ref_create 0 in
        let ref_events = ref [] in
        let ref_sys = ref [] in
        let ref_out =
          ref_run
            ~record:(fun e -> ref_events := e :: !ref_events)
            ~syscall:(fun n ->
              ref_sys := (n, st.r_icount) :: !ref_sys;
              test_syscall n)
            ~fuel:test_fuel instrs st
        in
        let ref_events = List.rev !ref_events in
        let ref_retires = retire_stream_of_events bb_of_pc ref_events in
        (* per-instruction engine, full hooks *)
        let h_events = ref [] in
        let h_bx = ref [] in
        let h_sys = ref [] in
        let mh = Interp.create ~entry:0 () in
        let full_hooks =
          {
            Hooks.nil with
            Hooks.on_block = (fun bb -> h_events := E_block bb :: !h_events);
            on_block_exec = (fun bb n -> h_bx := (bb, n) :: !h_bx);
            on_instr = (fun pc k -> h_events := E_instr (pc, k) :: !h_events);
            on_read = (fun a -> h_events := E_read a :: !h_events);
            on_write = (fun a -> h_events := E_write a :: !h_events);
            on_branch =
              (fun pc taken -> h_events := E_branch (pc, taken) :: !h_events);
          }
        in
        let h_out =
          run_engine ~hooks:full_hooks
            ~syscall:(fun n ->
              h_sys := (n, mh.Interp.icount) :: !h_sys;
              test_syscall n)
            ~fuel:test_fuel p mh
        in
        (* block-stepping engine *)
        let b_blocks = ref [] in
        let b_bx = ref [] in
        let b_branches = ref [] in
        let b_sys = ref [] in
        let mb = Interp.create ~entry:0 () in
        let block_hooks =
          {
            Hooks.nil with
            Hooks.on_block = (fun bb -> b_blocks := bb :: !b_blocks);
            on_block_exec = (fun bb n -> b_bx := (bb, n) :: !b_bx);
            on_branch = (fun pc t -> b_branches := (pc, t) :: !b_branches);
          }
        in
        let b_out =
          run_engine ~hooks:block_hooks
            ~syscall:(fun n ->
              b_sys := (n, mb.Interp.icount) :: !b_sys;
              test_syscall n)
            ~fuel:test_fuel p mb
        in
        Hooks.block_level block_hooks
        (* full-hook engine vs reference: exact trace *)
        && h_out = ref_out
        && List.rev !h_events = ref_events
        && expand_block_exec (List.rev !h_bx) = ref_retires
        && List.rev !h_sys = List.rev !ref_sys
        && state_matches st mh ref_events
        (* block engine vs reference: block-level view *)
        && b_out = ref_out
        && List.rev !b_blocks
           = List.filter_map
               (function E_block bb -> Some bb | _ -> None)
               ref_events
        && expand_block_exec (List.rev !b_bx) = ref_retires
        && List.rev !b_branches
           = List.filter_map
               (function E_branch (pc, t) -> Some (pc, t) | _ -> None)
               ref_events
        && List.rev !b_sys = List.rev !ref_sys
        && state_matches st mb ref_events
      end)

(* ------------------------------------------------------------------ *)
(* Fuel-split property: resuming the block engine in arbitrary chunks
   is bit-identical to one uninterrupted run *)

let prop_fuel_split =
  QCheck.Test.make ~name:"block engine is fuel-split invariant" ~count:200
    (QCheck.make QCheck.Gen.(pair prog_gen (int_range 1 11)))
    (fun (instrs, chunk) ->
      let p = Program.of_instrs instrs in
      let run_chunked () =
        let m = Interp.create ~entry:0 () in
        let blocks = ref [] in
        let bx = ref [] in
        let sys = ref [] in
        let hooks =
          {
            Hooks.nil with
            Hooks.on_block = (fun bb -> blocks := bb :: !blocks);
            on_block_exec = (fun bb n -> bx := (bb, n) :: !bx);
          }
        in
        let syscall n =
          sys := (n, m.Interp.icount) :: !sys;
          test_syscall n
        in
        let outcome = ref R_fuel in
        let left = ref test_fuel in
        (try
           while !left > 0 && !outcome = R_fuel do
             let f = min chunk !left in
             left := !left - f;
             match
               Interp.run ~engine:Interp.Block_step ~hooks ~syscall ~fuel:f p m
             with
             | Interp.Halted -> outcome := R_halted
             | Interp.Out_of_fuel -> ()
           done
         with Interp.Stack_error msg -> outcome := R_stack msg);
        (m, !outcome, List.rev !blocks, expand_block_exec (List.rev !bx),
         List.rev !sys)
      in
      let run_oneshot () =
        let m = Interp.create ~entry:0 () in
        let blocks = ref [] in
        let bx = ref [] in
        let sys = ref [] in
        let hooks =
          {
            Hooks.nil with
            Hooks.on_block = (fun bb -> blocks := bb :: !blocks);
            on_block_exec = (fun bb n -> bx := (bb, n) :: !bx);
          }
        in
        let syscall n =
          sys := (n, m.Interp.icount) :: !sys;
          test_syscall n
        in
        let outcome =
          try
            match
              Interp.run ~engine:Interp.Block_step ~hooks ~syscall
                ~fuel:test_fuel p m
            with
            | Interp.Halted -> R_halted
            | Interp.Out_of_fuel -> R_fuel
          with Interp.Stack_error msg -> R_stack msg
        in
        (m, outcome, List.rev !blocks, expand_block_exec (List.rev !bx),
         List.rev !sys)
      in
      let mc, oc, blc, bxc, sysc = run_chunked () in
      let m1, o1, bl1, bx1, sys1 = run_oneshot () in
      oc = o1 && blc = bl1 && bxc = bx1 && sysc = sys1
      && Array.for_all2 ( = ) mc.Interp.regs m1.Interp.regs
      && mc.Interp.pc = m1.Interp.pc
      && mc.Interp.sp = m1.Interp.sp
      && mc.Interp.icount = m1.Interp.icount)

(* ------------------------------------------------------------------ *)
(* BBV slices: block-stepped delivery vs a reference slicer over the
   per-retirement stream, and vs the per-instruction engine *)

let ref_slices ~slice_len retires =
  let slices = ref [] in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let cur_len = ref 0 in
  let start = ref 0 in
  let index = ref 0 in
  let close () =
    let bbv =
      Hashtbl.fold (fun bb c acc -> (bb, c) :: acc) counts []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> Array.of_list
    in
    slices :=
      {
        Bbv_tool.index = !index;
        start_icount = !start;
        length = !cur_len;
        bbv;
      }
      :: !slices;
    incr index;
    start := !start + !cur_len;
    cur_len := 0;
    Hashtbl.reset counts
  in
  List.iter
    (fun bb ->
      Hashtbl.replace counts bb
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts bb));
      incr cur_len;
      if !cur_len = slice_len then close ())
    retires;
  if !cur_len > 0 then close ();
  Array.of_list (List.rev !slices)

let slice_eq (a : Bbv_tool.slice) (b : Bbv_tool.slice) =
  a.index = b.index
  && a.start_icount = b.start_icount
  && a.length = b.length
  && a.bbv = b.bbv

let prop_bbv_slices =
  QCheck.Test.make ~name:"BBV slices identical across engines" ~count:200
    (QCheck.make QCheck.Gen.(pair prog_gen (int_range 3 9)))
    (fun (instrs, slice_len) ->
      let p = Program.of_instrs instrs in
      let _, bb_of_pc = ref_structure instrs in
      (* reference stream *)
      let st = ref_create 0 in
      let events = ref [] in
      ignore
        (ref_run
           ~record:(fun e -> events := e :: !events)
           ~syscall:test_syscall ~fuel:test_fuel instrs st);
      let retires = retire_stream_of_events bb_of_pc (List.rev !events) in
      let expected = ref_slices ~slice_len retires in
      let run hooks_of =
        let bbv = Bbv_tool.create ~slice_len p in
        let m = Interp.create ~entry:0 () in
        (try
           ignore
             (Interp.run ~engine:Interp.Block_step ~hooks:(hooks_of bbv)
                ~syscall:test_syscall ~fuel:test_fuel p m)
         with Interp.Stack_error _ -> ());
        Bbv_tool.finish bbv;
        Bbv_tool.slices bbv
      in
      (* block-stepping engine (BBV hooks are block-level) *)
      let via_block = run (fun bbv -> Bbv_tool.hooks bbv) in
      (* per-instruction engine, forced by a live on_instr hook *)
      let via_instr =
        run (fun bbv ->
            Hooks.seq (Bbv_tool.hooks bbv)
              { Hooks.nil with Hooks.on_instr = (fun _ _ -> ()) })
      in
      Array.length via_block = Array.length expected
      && Array.length via_instr = Array.length expected
      && Array.for_all2 slice_eq via_block expected
      && Array.for_all2 slice_eq via_instr expected)

(* ------------------------------------------------------------------ *)
(* Memory TLB: slot-collision aliasing against the Hashtbl model, and
   clear/copy invalidation *)

let prop_tlb_aliasing =
  QCheck.Test.make ~name:"TLB slot aliasing matches model" ~count:200
    QCheck.(
      list_of_size
        Gen.(10 -- 120)
        (triple (int_range 0 5) (int_range 0 3) (pair bool int)))
    (fun ops ->
      (* page stride * tlb size: consecutive ops alias the same
         direct-mapped slot with different tags *)
      let slot_stride = 64 * Memory.page_bytes in
      let mem = Memory.create () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      List.for_all
        (fun (way, off, (is_store, v)) ->
          let addr = (way * slot_stride) + (off * 8) in
          if is_store then begin
            Memory.store mem addr v;
            Hashtbl.replace model addr v;
            true
          end
          else
            Memory.load mem addr
            = Option.value ~default:0 (Hashtbl.find_opt model addr))
        ops)

let test_tlb_clear_copy () =
  let mem = Memory.create () in
  Memory.store mem 0x100 7;
  Memory.storef mem 0x100 1.5;
  Alcotest.(check int) "store visible" 7 (Memory.load mem 0x100);
  let dup = Memory.copy mem in
  Memory.store dup 0x100 9;
  Alcotest.(check int) "copy is independent" 7 (Memory.load mem 0x100);
  Alcotest.(check int) "copy took the write" 9 (Memory.load dup 0x100);
  Alcotest.(check (float 0.0)) "float view copied" 1.5 (Memory.loadf dup 0x100);
  Memory.clear mem;
  Alcotest.(check int) "clear drops int view" 0 (Memory.load mem 0x100);
  Alcotest.(check (float 0.0)) "clear drops float view" 0.0
    (Memory.loadf mem 0x100);
  (* a TLB entry surviving clear would resurrect the old page *)
  Memory.store mem 0x100 3;
  Alcotest.(check int) "store after clear" 3 (Memory.load mem 0x100);
  Alcotest.(check int) "copy unaffected by clear" 9 (Memory.load dup 0x100)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_engines_agree;
    QCheck_alcotest.to_alcotest prop_fuel_split;
    QCheck_alcotest.to_alcotest prop_bbv_slices;
    QCheck_alcotest.to_alcotest prop_tlb_aliasing;
    Alcotest.test_case "TLB clear/copy invalidation" `Quick
      test_tlb_clear_copy;
  ]
