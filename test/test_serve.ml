(* Tests for the serve subsystem (Sp_serve): the framed wire protocol
   (round-trips plus a fuzz suite: truncations, bit flips, oversized
   and garbage frames must yield typed errors, never exceptions), the
   bounded fair queue, the append-only results store's torn-tail
   recovery, regression gating, the v2 options codec, an in-process
   daemon exercised by concurrent clients (differentially against the
   direct pipeline), and the CLI's exit-code convention. *)

module J = Sp_obs.Json
module P = Sp_serve.Protocol
module Q = Sp_serve.Queue
module RS = Sp_serve.Results_store
module Api = Specrepro.Api
module Pipeline = Specrepro.Pipeline

let tmp_path name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "specrepro-test-%d-%s" (Unix.getpid ()) name)

let rm path = try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* protocol: round-trips *)

let sample_docs =
  [
    J.Null;
    J.Obj [];
    J.Obj [ ("a", J.Num 1.5); ("b", J.Str "x\"\n"); ("c", J.Bool true) ];
    J.List [ J.Num 0.0; J.Null; J.Obj [ ("nested", J.List [] ) ] ];
    J.Str (String.make 1000 'z');
  ]

let test_protocol_roundtrip () =
  List.iter
    (fun doc ->
      match P.decode (P.encode doc) with
      | Ok doc' -> Alcotest.(check bool) "roundtrip" true (doc = doc')
      | Error e -> Alcotest.fail (P.error_message e))
    sample_docs

let test_protocol_stream () =
  let s = String.concat "" (List.map P.encode sample_docs) in
  let rec drain pos acc =
    if pos = String.length s then List.rev acc
    else
      match P.decode_stream s ~pos with
      | Ok (doc, next) -> drain next (doc :: acc)
      | Error e -> Alcotest.fail (P.error_message e)
  in
  Alcotest.(check bool) "stream decodes all" true (drain 0 [] = sample_docs)

(* every proper prefix of a frame is a typed error, and so is a frame
   with trailing bytes *)
let test_protocol_truncation () =
  let s = P.encode (List.nth sample_docs 2) in
  for len = 0 to String.length s - 1 do
    match P.decode (String.sub s 0 len) with
    | Ok _ -> Alcotest.fail (Printf.sprintf "prefix of %d accepted" len)
    | Error _ -> ()
  done;
  match P.decode (s ^ "x") with
  | Ok _ -> Alcotest.fail "trailing byte accepted"
  | Error _ -> ()

(* flipping any single byte of a valid frame must surface as a typed
   error — the checksum covers the payload, the framing validates the
   rest *)
let test_protocol_bitflip () =
  let s = P.encode (List.nth sample_docs 2) in
  for i = 0 to String.length s - 1 do
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    match P.decode (Bytes.to_string b) with
    | Ok _ -> Alcotest.fail (Printf.sprintf "flip at %d accepted" i)
    | Error _ -> ()
  done

let frame_raw ?(version = 1) ?crc payload =
  let b = Buffer.create 64 in
  Buffer.add_string b "SPRF";
  Sp_util.Binio.w_u8 b version;
  Sp_util.Binio.w_u32 b (String.length payload);
  Sp_util.Binio.w_u32 b
    (match crc with Some c -> c | None -> Sp_util.Crc32.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

let test_protocol_classification () =
  (match P.decode (frame_raw "not json at all") with
  | Error (P.Bad_json _ as e) ->
      Alcotest.(check bool) "bad json recoverable" true (P.recoverable e)
  | _ -> Alcotest.fail "expected Bad_json");
  (match P.decode (frame_raw ~crc:0 "{}") with
  | Error (P.Bad_crc _ as e) ->
      Alcotest.(check bool) "bad crc recoverable" true (P.recoverable e)
  | _ -> Alcotest.fail "expected Bad_crc");
  (match P.decode (frame_raw ~version:9 "{}") with
  | Error (P.Bad_version 9 as e) ->
      Alcotest.(check bool) "bad version fatal" false (P.recoverable e)
  | _ -> Alcotest.fail "expected Bad_version");
  (match P.decode ("XRPF" ^ String.sub (frame_raw "{}") 4 9 ^ "{}") with
  | Error (P.Bad_magic _ as e) ->
      Alcotest.(check bool) "bad magic fatal" false (P.recoverable e)
  | _ -> Alcotest.fail "expected Bad_magic");
  (* oversized: a declared length past the cap is refused before any
     allocation *)
  let b = Buffer.create 16 in
  Buffer.add_string b "SPRF";
  Sp_util.Binio.w_u8 b 1;
  Sp_util.Binio.w_u32 b (P.max_payload + 1);
  Sp_util.Binio.w_u32 b 0;
  match P.decode (Buffer.contents b) with
  | Error (P.Oversized _ as e) ->
      Alcotest.(check bool) "oversized fatal" false (P.recoverable e)
  | _ -> Alcotest.fail "expected Oversized"

let prop_protocol_never_raises =
  QCheck.Test.make ~name:"protocol decode never raises on arbitrary bytes"
    ~count:500
    QCheck.(string_of_size Gen.(int_range 0 200))
    (fun s ->
      match P.decode s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* queue: fairness, bounds, close *)

let test_queue_round_robin () =
  let q = Q.create ~capacity:16 in
  List.iter
    (fun (client, x) ->
      Alcotest.(check bool) "pushed" true (Q.push q ~client x = Q.Pushed))
    [ ("a", "a1"); ("a", "a2"); ("a", "a3"); ("b", "b1"); ("c", "c1") ];
  let popped = List.init 5 (fun _ -> Option.get (Q.try_pop q)) in
  (* one job per client per turn: a's flood cannot starve b and c *)
  Alcotest.(check (list string))
    "fair order"
    [ "a1"; "b1"; "c1"; "a2"; "a3" ]
    popped;
  Alcotest.(check bool) "drained" true (Q.try_pop q = None)

let test_queue_capacity () =
  let q = Q.create ~capacity:2 in
  Alcotest.(check bool) "p1" true (Q.push q ~client:"a" 1 = Q.Pushed);
  Alcotest.(check bool) "p2" true (Q.push q ~client:"b" 2 = Q.Pushed);
  Alcotest.(check bool) "full" true (Q.push q ~client:"c" 3 = Q.Full);
  ignore (Q.try_pop q);
  Alcotest.(check bool) "room again" true (Q.push q ~client:"c" 3 = Q.Pushed);
  Alcotest.(check bool) "bad capacity" true
    (match Q.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_queue_close () =
  let q = Q.create ~capacity:4 in
  ignore (Q.push q ~client:"a" 1);
  ignore (Q.push q ~client:"b" 2);
  Q.close q;
  Alcotest.(check bool) "push refused" true (Q.push q ~client:"a" 3 = Q.Closed_);
  (* queued jobs drain out, then pop yields None forever *)
  Alcotest.(check bool) "drain 1" true (Q.pop q = Some 1);
  Alcotest.(check bool) "drain 2" true (Q.pop q = Some 2);
  Alcotest.(check bool) "then none" true (Q.pop q = None);
  Alcotest.(check bool) "still none" true (Q.pop q = None)

let test_queue_blocking_pop () =
  let q = Q.create ~capacity:4 in
  let result = ref None in
  let th = Thread.create (fun () -> result := Q.pop q) () in
  Thread.delay 0.05;
  ignore (Q.push q ~client:"a" 42);
  Thread.join th;
  Alcotest.(check bool) "blocked pop woke" true (!result = Some 42)

(* ------------------------------------------------------------------ *)
(* results store *)

let synth_record ?(client = "t") ?(time = 0.0) bench v =
  J.Obj
    [
      ("time", J.Num time);
      ("client", J.Str client);
      ("benchmark", J.Str bench);
      ("metrics", J.Obj [ ("cpi_err_pct", J.Num v) ]);
    ]

let append_ok path record =
  match RS.append ~path record with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_store_roundtrip () =
  let path = tmp_path "store-roundtrip.bin" in
  rm path;
  (match RS.read_file path with
  | Ok ([], RS.Clean) -> ()
  | _ -> Alcotest.fail "missing store should read as empty");
  let r1 = synth_record "505.mcf_r" 1.0 in
  let r2 = synth_record "557.xz_r" 2.0 in
  let r3 = synth_record "505.mcf_r" 3.0 in
  List.iter (append_ok path) [ r1; r2; r3 ];
  (match RS.read_file path with
  | Ok (records, RS.Clean) ->
      Alcotest.(check bool) "records back" true (records = [ r1; r2; r3 ]);
      Alcotest.(check (list string))
        "benchmarks in first-appearance order"
        [ "505.mcf_r"; "557.xz_r" ]
        (RS.benchmarks records);
      Alcotest.(check bool) "history filters" true
        (RS.history records ~benchmark:"505.mcf_r" = [ r1; r3 ]);
      Alcotest.(check bool) "metric lookup" true
        (RS.metric r2 "cpi_err_pct" = Some 2.0);
      Alcotest.(check bool) "missing metric" true (RS.metric r2 "nope" = None)
  | Ok (_, t) ->
      Alcotest.fail
        (Option.value (RS.tail_message t) ~default:"unexpected tail")
  | Error e -> Alcotest.fail e);
  rm path

(* a crash can only leave a prefix of the final record; every such
   prefix must classify as Torn, and the next append must recover *)
let test_store_torn_tail () =
  let r1 = synth_record "505.mcf_r" 1.0 in
  let r2 = synth_record "557.xz_r" 2.0 in
  let r3 = synth_record "505.mcf_r" 3.0 in
  let path = tmp_path "store-torn.bin" in
  rm path;
  append_ok path r1;
  let intact = (Unix.stat path).Unix.st_size in
  append_ok path r2;
  let full = (Unix.stat path).Unix.st_size in
  for keep = intact + 1 to full - 1 do
    (* re-create the torn state at every possible crash point *)
    rm path;
    append_ok path r1;
    append_ok path r2;
    Unix.truncate path keep;
    (match RS.read_file path with
    | Ok ([ r ], RS.Torn { offset; bytes }) ->
        Alcotest.(check bool) "valid prefix intact" true (r = r1);
        Alcotest.(check int) "torn offset" intact offset;
        Alcotest.(check int) "torn bytes" (keep - intact) bytes
    | Ok (_, t) ->
        Alcotest.fail
          (Printf.sprintf "keep=%d: %s" keep
             (Option.value (RS.tail_message t) ~default:"clean?!"))
    | Error e -> Alcotest.fail e);
    (* appending truncates the torn bytes away, then writes *)
    append_ok path r3;
    match RS.read_file path with
    | Ok (records, RS.Clean) ->
        Alcotest.(check bool)
          (Printf.sprintf "recovered at keep=%d" keep)
          true
          (records = [ r1; r3 ])
    | _ -> Alcotest.fail "append did not recover torn tail"
  done;
  rm path

let test_store_corrupt () =
  let path = tmp_path "store-corrupt.bin" in
  rm path;
  append_ok path (synth_record "505.mcf_r" 1.0);
  append_ok path (synth_record "557.xz_r" 2.0);
  (* flip one payload byte mid-file: a complete frame with a wrong
     checksum is bit rot, not a crash — truncation must NOT repair it *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 20 Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.lseek fd 20 Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  (match RS.read_file path with
  | Ok ([], RS.Corrupt _) -> ()
  | _ -> Alcotest.fail "expected Corrupt with no reachable records");
  (match RS.append ~path (synth_record "505.mcf_r" 3.0) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "append must refuse a corrupt store");
  rm path

(* ------------------------------------------------------------------ *)
(* regression gating *)

let test_regress () =
  let records =
    [
      synth_record "505.mcf_r" 1.0;
      synth_record "557.xz_r" 50.0;
      synth_record "505.mcf_r" 2.0;
      synth_record "505.mcf_r" 6.0;
    ]
  in
  (match
     Sp_serve.Regress.evaluate ~records ~benchmark:"999.none"
       ~metric:"cpi_err_pct" ~gate:1.25
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no stored runs must be an error");
  (match
     Sp_serve.Regress.evaluate ~records ~benchmark:"557.xz_r"
       ~metric:"cpi_err_pct" ~gate:1.25
   with
  | Ok None -> ()
  | _ -> Alcotest.fail "single run has no baseline");
  (match
     Sp_serve.Regress.evaluate ~records ~benchmark:"505.mcf_r"
       ~metric:"cpi_err_pct" ~gate:1.25
   with
  | Ok (Some v) ->
      Alcotest.(check int) "runs" 3 v.Sp_serve.Regress.runs;
      Alcotest.(check (float 1e-9)) "latest" 6.0 v.Sp_serve.Regress.latest;
      (* baseline is the mean of the priors: (1 + 2) / 2 *)
      Alcotest.(check (float 1e-9)) "baseline" 1.5 v.Sp_serve.Regress.baseline;
      Alcotest.(check (float 1e-9)) "ratio" 4.0 v.Sp_serve.Regress.ratio;
      Alcotest.(check bool) "regressed" true v.Sp_serve.Regress.regressed
  | _ -> Alcotest.fail "expected a verdict");
  (match
     Sp_serve.Regress.evaluate ~records ~benchmark:"505.mcf_r"
       ~metric:"cpi_err_pct" ~gate:5.0
   with
  | Ok (Some v) ->
      Alcotest.(check bool) "within wide gate" false
        v.Sp_serve.Regress.regressed
  | _ -> Alcotest.fail "expected a verdict");
  match
    Sp_serve.Regress.evaluate ~records ~benchmark:"505.mcf_r" ~metric:"nope"
      ~gate:1.25
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing metric must be an error"

(* ------------------------------------------------------------------ *)
(* the v2 options codec *)

let test_api_options_roundtrip () =
  let o =
    Pipeline.normalize
      {
        Pipeline.default_options with
        Pipeline.slices_scale = 0.03;
        jobs = 4;
        sampler = Sp_simpoint.Sampler.Systematic;
        warmup_insns = 70000;
      }
  in
  let rendered = Api.options_json ~benchmark:"505.mcf_r" o in
  match Api.options_of_json rendered with
  | Error e -> Alcotest.fail e
  | Ok (bench, o') ->
      Alcotest.(check (option string)) "benchmark" (Some "505.mcf_r") bench;
      Alcotest.(check string) "re-render is byte-identical"
        (J.to_string rendered)
        (J.to_string (Api.options_json ~benchmark:"505.mcf_r" o'))

let test_api_options_strict () =
  let bad =
    [
      J.Obj [ ("bogus", J.Num 1.0) ];
      J.Obj [ ("scale", J.Str "fast") ];
      J.Obj [ ("scale", J.Num (-1.0)) ];
      J.Obj [ ("jobs", J.Num 1.5) ];
      J.Obj [ ("sampler", J.Str "nonesuch") ];
      J.Str "not an object";
    ]
  in
  List.iter
    (fun json ->
      match Api.options_of_json json with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.fail
            (Printf.sprintf "accepted bad options %s" (J.to_string json)))
    bad

let test_api_envelope_shape () =
  let s =
    J.to_string
      (Api.envelope ~command:"x" ~options:Api.no_options
         ~result:(J.Obj []))
  in
  Alcotest.(check string) "canonical field order"
    {|{"schema":"specrepro/v2","command":"x","options":{},"result":{}}|} s;
  let e = J.to_string (Api.error_envelope ~code:"c" ~message:"m") in
  Alcotest.(check string) "error envelope"
    {|{"schema":"specrepro/v2","command":"error","options":{},"result":{"code":"c","message":"m"}}|}
    e

(* ------------------------------------------------------------------ *)
(* the daemon, in-process *)

let test_options scale jobs =
  Pipeline.normalize
    {
      Pipeline.default_options with
      Pipeline.slices_scale = scale;
      jobs;
      progress = false;
    }

let start_server ?(parallel = 2) ?(queue_capacity = 16) ?(job_timeout = 0.0)
    ?results_path ~name options =
  let socket_path = tmp_path (name ^ ".sock") in
  rm socket_path;
  ( Sp_serve.Server.start
      {
        Sp_serve.Server.socket_path;
        results_path;
        queue_capacity;
        parallel;
        job_timeout;
        base_options = options;
        quiet = true;
      },
    socket_path )

(* a bare socket, for tests that need to misbehave at the byte level
   (send garbage, or vanish without reading a reply) *)
let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  fd

(* strip the fields that legitimately vary run to run (timings and the
   metrics snapshot); everything else must match bit for bit *)
let rec normalize = function
  | J.Obj kvs ->
      J.Obj
        (List.map
           (fun (k, v) ->
             match k with
             | "wall_seconds" | "seconds" -> (k, J.Num 0.0)
             | "metrics" -> (k, J.List [])
             | _ -> (k, normalize v))
           kvs)
  | J.List vs -> J.List (List.map normalize vs)
  | v -> v

let norm_string json = J.to_string (normalize json)

let request_ok client req =
  match Sp_serve.Client.request client req with
  | Ok (raw, reply) -> (raw, reply)
  | Error e -> Alcotest.fail e

let reply_command reply =
  Option.bind (J.member "command" reply) J.to_str

let error_code reply =
  Option.bind
    (Option.bind (J.member "result" reply) (J.member "code"))
    J.to_str

(* three concurrent clients, each at a different job width, against
   direct pipeline runs: after timing normalisation the daemon replies
   must be byte-identical to `run --json` output for the same options *)
let test_daemon_differential () =
  let bench = "557.xz_r" in
  let spec = Sp_workloads.Suite.find bench in
  let expected jobs =
    let options = test_options 0.02 jobs in
    norm_string (Api.run_envelope (Pipeline.run_benchmark ~options spec))
  in
  let expect1 = expected 1 and expect4 = expected 4 in
  let server, socket = start_server ~name:"diff" (test_options 0.02 1) in
  let replies = Array.make 3 "" in
  let threads =
    List.init 3 (fun i ->
        Thread.create
          (fun () ->
            let jobs = if i = 2 then 4 else 1 in
            match Sp_serve.Client.connect socket with
            | Error e -> replies.(i) <- "connect error: " ^ e
            | Ok client ->
                Fun.protect
                  ~finally:(fun () -> Sp_serve.Client.close client)
                  (fun () ->
                    match
                      Sp_serve.Client.request client
                        (Sp_serve.Client.submit ~benchmark:bench
                           (test_options 0.02 jobs))
                    with
                    | Ok (_, reply) -> replies.(i) <- norm_string reply
                    | Error e -> replies.(i) <- "request error: " ^ e))
          ())
  in
  List.iter Thread.join threads;
  Sp_serve.Server.stop server;
  Alcotest.(check string) "client 0 (jobs 1)" expect1 replies.(0);
  Alcotest.(check string) "client 1 (jobs 1)" expect1 replies.(1);
  Alcotest.(check string) "client 2 (jobs 4)" expect4 replies.(2)

let test_daemon_protocol_faults () =
  let server, socket = start_server ~name:"faults" (test_options 0.02 1) in
  Fun.protect
    ~finally:(fun () -> Sp_serve.Server.stop server)
    (fun () ->
      let fd = raw_connect socket in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let write_raw s =
            ignore (Unix.write_substring fd s 0 (String.length s))
          in
          (* a corrupt checksum gets a typed error reply and the
             connection survives *)
          write_raw (frame_raw ~crc:0 "{}");
          (match P.read fd with
          | Ok (_, reply) ->
              Alcotest.(check (option string))
                "bad frame reported" (Some "error") (reply_command reply);
              Alcotest.(check (option string))
                "bad-frame code" (Some "bad-frame") (error_code reply)
          | Error e -> Alcotest.fail (P.error_message e));
          P.write fd Sp_serve.Client.status;
          (match P.read fd with
          | Ok (_, reply) ->
              Alcotest.(check (option string))
                "connection survives" (Some "status") (reply_command reply)
          | Error e -> Alcotest.fail (P.error_message e));
          (* an unframed byte stream is answered then dropped — that
             connection only *)
          write_raw (String.make 32 'X');
          (match P.read fd with
          | Ok (_, reply) ->
              Alcotest.(check (option string))
                "garbage reported" (Some "error") (reply_command reply)
          | Error e -> Alcotest.fail (P.error_message e));
          match P.read fd with
          | Error P.Closed -> ()
          | Ok _ -> Alcotest.fail "connection should be dropped"
          | Error _ -> ());
      (* other clients are unaffected *)
      match Sp_serve.Client.connect socket with
      | Error e -> Alcotest.fail e
      | Ok client ->
          Fun.protect
            ~finally:(fun () -> Sp_serve.Client.close client)
            (fun () ->
              let _, reply = request_ok client Sp_serve.Client.status in
              Alcotest.(check (option string))
                "daemon still serving" (Some "status") (reply_command reply)))

let test_daemon_bad_requests () =
  let server, socket = start_server ~name:"badreq" (test_options 0.02 1) in
  Fun.protect
    ~finally:(fun () -> Sp_serve.Server.stop server)
    (fun () ->
      match Sp_serve.Client.connect socket with
      | Error e -> Alcotest.fail e
      | Ok client ->
          Fun.protect
            ~finally:(fun () -> Sp_serve.Client.close client)
            (fun () ->
              let check_err name req =
                let _, reply = request_ok client req in
                Alcotest.(check (option string))
                  name (Some "error") (reply_command reply);
                Alcotest.(check (option string))
                  (name ^ " code") (Some "bad-request") (error_code reply)
              in
              check_err "wrong schema"
                (J.Obj
                   [
                     ("schema", J.Str "specrepro/v1");
                     ("command", J.Str "status");
                   ]);
              check_err "unknown command"
                (J.Obj
                   [ ("schema", J.Str Api.schema); ("command", J.Str "dance") ]);
              check_err "unknown benchmark"
                (J.Obj
                   [
                     ("schema", J.Str Api.schema);
                     ("command", J.Str "submit");
                     ("options", J.Obj [ ("benchmark", J.Str "999.none") ]);
                   ]);
              check_err "missing benchmark"
                (J.Obj
                   [
                     ("schema", J.Str Api.schema);
                     ("command", J.Str "submit");
                     ("options", J.Obj []);
                   ]);
              check_err "unknown option field"
                (J.Obj
                   [
                     ("schema", J.Str Api.schema);
                     ("command", J.Str "submit");
                     ( "options",
                       J.Obj
                         [
                           ("benchmark", J.Str "557.xz_r");
                           ("pinball_cache", J.Str "/tmp/x");
                         ] );
                   ])))

(* parallel=1 serialises jobs, so the second of two quick submissions
   waits out the first's full runtime and deterministically exceeds a
   0.05s deadline *)
let test_daemon_timeout () =
  let server, socket =
    start_server ~name:"timeout" ~parallel:1 ~job_timeout:0.05
      (test_options 0.02 1)
  in
  Fun.protect
    ~finally:(fun () -> Sp_serve.Server.stop server)
    (fun () ->
      let fd = raw_connect socket in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let submit =
            Sp_serve.Client.submit ~benchmark:"557.xz_r" (test_options 0.02 1)
          in
          (* fire both before reading either reply, so the second is
             queued for the first's whole runtime *)
          P.write fd submit;
          P.write fd submit;
          match (P.read fd, P.read fd) with
          | Ok (_, rep1), Ok (_, rep2) ->
              Alcotest.(check (option string))
                "first completes" (Some "run") (reply_command rep1);
              Alcotest.(check (option string))
                "second reported" (Some "error") (reply_command rep2);
              Alcotest.(check (option string))
                "timeout code" (Some "timeout") (error_code rep2)
          | Error e, _ | _, Error e -> Alcotest.fail (P.error_message e)))

let test_daemon_disconnect_mid_job () =
  let results_path = tmp_path "disconnect-results.bin" in
  rm results_path;
  let server, socket =
    start_server ~name:"disco" ~results_path (test_options 0.02 1)
  in
  Fun.protect
    ~finally:(fun () ->
      Sp_serve.Server.stop server;
      rm results_path)
    (fun () ->
      (* client A submits and vanishes without reading its reply *)
      let a = raw_connect socket in
      P.write a
        (Sp_serve.Client.submit ~benchmark:"557.xz_r" (test_options 0.02 1));
      Unix.close a;
      (* the daemon must survive and keep serving client B *)
      match Sp_serve.Client.connect socket with
      | Error e -> Alcotest.fail e
      | Ok b ->
          Fun.protect
            ~finally:(fun () -> Sp_serve.Client.close b)
            (fun () ->
              let _, reply =
                request_ok b
                  (Sp_serve.Client.submit ~benchmark:"557.xz_r"
                     (test_options 0.02 1))
              in
              Alcotest.(check (option string))
                "B still served" (Some "run") (reply_command reply)))

let test_daemon_drain_on_shutdown () =
  let results_path = tmp_path "drain-results.bin" in
  rm results_path;
  let server, socket =
    start_server ~name:"drain" ~parallel:1 ~results_path
      (test_options 0.02 1)
  in
  let fd = raw_connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let submit =
        Sp_serve.Client.submit ~benchmark:"557.xz_r" (test_options 0.02 1)
      in
      (* two jobs in the pipe, then ask the daemon to drain — but only
         once status shows both were accepted (the submits and the
         shutdown travel on different connections, so ordering must be
         established, not assumed) *)
      P.write fd submit;
      P.write fd submit;
      let accepted () =
        match Sp_serve.Client.connect socket with
        | Error e -> Alcotest.fail e
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Sp_serve.Client.close c)
              (fun () ->
                let _, reply = request_ok c Sp_serve.Client.status in
                let field name =
                  match
                    Option.bind
                      (Option.bind (J.member "result" reply) (J.member name))
                      J.to_float
                  with
                  | Some v -> int_of_float v
                  | None -> Alcotest.fail ("status lacks " ^ name)
                in
                field "queue_depth" + field "jobs_inflight"
                + field "completed")
      in
      let deadline = Unix.gettimeofday () +. 10.0 in
      while accepted () < 2 && Unix.gettimeofday () < deadline do
        Thread.delay 0.01
      done;
      Alcotest.(check bool) "both jobs accepted" true (accepted () >= 2);
      let _, shutdown_reply =
        match Sp_serve.Client.connect socket with
        | Error e -> Alcotest.fail e
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Sp_serve.Client.close c)
              (fun () -> request_ok c Sp_serve.Client.shutdown)
      in
      Alcotest.(check (option string))
        "shutdown acknowledged" (Some "shutdown")
        (reply_command shutdown_reply);
      (* both in-flight jobs are still answered *)
      match (P.read fd, P.read fd) with
      | Ok (_, r1), Ok (_, r2) ->
          Alcotest.(check (option string))
            "job 1 drained" (Some "run") (reply_command r1);
          Alcotest.(check (option string))
            "job 2 drained" (Some "run") (reply_command r2)
      | Error e, _ | _, Error e -> Alcotest.fail (P.error_message e));
  Sp_serve.Server.wait server;
  (* and both landed in the results store *)
  (match RS.read_file results_path with
  | Ok (records, RS.Clean) ->
      Alcotest.(check int) "both recorded" 2 (List.length records)
  | _ -> Alcotest.fail "results store damaged");
  rm results_path

(* ------------------------------------------------------------------ *)
(* the CLI exit-code convention, pinned end to end

   The executables are siblings of the test binary inside _build
   (declared as test deps in dune); resolve them relative to this
   binary so the pins work regardless of the invoking directory. *)

let build_root = Filename.dirname (Filename.dirname Sys.executable_name)
let cli = Filename.concat build_root "bin/specrepro_cli.exe"
let bench_exe = Filename.concat build_root "bench/main.exe"

let run_cmd cmd = Sys.command (cmd ^ " >/dev/null 2>&1")

let test_cli_exit_codes () =
  let store = tmp_path "cli-store.bin" in
  let qstore = Filename.quote store in
  rm store;
  append_ok store (synth_record "505.mcf_r" 1.0);
  append_ok store (synth_record "505.mcf_r" 10.0);
  let single = tmp_path "cli-single.bin" in
  let qsingle = Filename.quote single in
  rm single;
  append_ok single (synth_record "505.mcf_r" 1.0);
  let garbage = tmp_path "cli-garbage" in
  let oc = open_out garbage in
  output_string oc "not a trace";
  close_out oc;
  let pbdir = tmp_path "cli-pbdir" in
  (try Unix.mkdir pbdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out (Filename.concat pbdir "bad.pb") in
  output_string oc "junk";
  close_out oc;
  let checks =
    [
      (* 0: success *)
      (0, cli ^ " list --json");
      (0, Printf.sprintf "%s query --results %s" cli qstore);
      (0, Printf.sprintf "%s bench-regress 505.mcf_r --results %s --gate 100"
           cli qstore);
      (0, Printf.sprintf "%s bench-regress 505.mcf_r --results %s" cli qsingle);
      (* 1: bad input or corrupt artifact *)
      (1, cli ^ " run 999.none --json");
      (1, Printf.sprintf "%s report %s" cli (Filename.quote garbage));
      (1, Printf.sprintf "%s pinballs verify %s" cli (Filename.quote pbdir));
      (1, Printf.sprintf "%s query --results %s" cli
           (Filename.quote (tmp_path "cli-none.bin")));
      (1, Printf.sprintf "%s bench-regress 505.mcf_r --results %s" cli
           (Filename.quote (tmp_path "cli-none.bin")));
      (1, Printf.sprintf "%s submit 557.xz_r --socket %s" cli
           (Filename.quote (tmp_path "cli-no-daemon.sock")));
      (1, bench_exe ^ " nonesuch-experiment");
      (1, bench_exe ^ " --gate malformed");
      (1, bench_exe ^ " --gate-all nope");
      (* 2: a gate failed — the synthetically regressed stored run *)
      (2, Printf.sprintf "%s bench-regress 505.mcf_r --results %s" cli qstore);
    ]
  in
  List.iter
    (fun (expected, cmd) ->
      Alcotest.(check int) cmd expected (run_cmd cmd))
    checks;
  rm store;
  rm single;
  rm garbage;
  rm (Filename.concat pbdir "bad.pb");
  (try Unix.rmdir pbdir with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol stream" `Quick test_protocol_stream;
    Alcotest.test_case "protocol truncation fuzz" `Quick
      test_protocol_truncation;
    Alcotest.test_case "protocol bit-flip fuzz" `Quick test_protocol_bitflip;
    Alcotest.test_case "protocol error classes" `Quick
      test_protocol_classification;
    QCheck_alcotest.to_alcotest prop_protocol_never_raises;
    Alcotest.test_case "queue round-robin fairness" `Quick
      test_queue_round_robin;
    Alcotest.test_case "queue capacity bound" `Quick test_queue_capacity;
    Alcotest.test_case "queue close drains" `Quick test_queue_close;
    Alcotest.test_case "queue blocking pop" `Quick test_queue_blocking_pop;
    Alcotest.test_case "store roundtrip and accessors" `Quick
      test_store_roundtrip;
    Alcotest.test_case "store torn-tail recovery" `Quick test_store_torn_tail;
    Alcotest.test_case "store corrupt is terminal" `Quick test_store_corrupt;
    Alcotest.test_case "regress verdicts" `Quick test_regress;
    Alcotest.test_case "api options roundtrip" `Quick
      test_api_options_roundtrip;
    Alcotest.test_case "api options strict" `Quick test_api_options_strict;
    Alcotest.test_case "api envelope shape" `Quick test_api_envelope_shape;
    Alcotest.test_case "daemon differential vs CLI" `Quick
      test_daemon_differential;
    Alcotest.test_case "daemon survives protocol faults" `Quick
      test_daemon_protocol_faults;
    Alcotest.test_case "daemon rejects bad requests" `Quick
      test_daemon_bad_requests;
    Alcotest.test_case "daemon job timeout" `Quick test_daemon_timeout;
    Alcotest.test_case "daemon survives disconnect mid-job" `Quick
      test_daemon_disconnect_mid_job;
    Alcotest.test_case "daemon drains on shutdown" `Quick
      test_daemon_drain_on_shutdown;
    Alcotest.test_case "cli exit codes" `Quick test_cli_exit_codes;
  ]
