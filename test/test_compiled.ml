(* Differential tests for the compiled-block execution engine.

   The compiled tier pre-compiles every basic block into a straight-line
   closure and chains superblocks across unconditional terminators; its
   contract is bit-identical observable behaviour to the per-instruction
   reference and to block-stepping — same machine state, same icount,
   same hook traces and syscall observation points — for any fuel split,
   including handlers that raise out of the run.  This suite reuses the
   independent reference interpreter and program generator from
   {!Test_blockstep} and adds the compiled engine (and the combined
   single-pass profiler built on [on_block_span]) to the differential. *)

open Sp_isa
open Sp_vm
open Sp_pin
module B = Test_blockstep

(* expand a span trace to the per-retirement pc stream it names *)
let pcs_of_spans spans =
  List.concat_map (fun (pc0, n) -> List.init n (fun i -> pc0 + i)) spans

let pc_stream_of_events events =
  List.filter_map (function B.E_instr (pc, _) -> Some pc | _ -> None) events

(* one run on a chosen engine with the full block-level hook set *)
type obs = {
  o_out : B.ref_outcome;
  o_blocks : int list;
  o_bx : (int * int) list;
  o_spans : (int * int) list;
  o_branches : (int * bool) list;
  o_sys : (int * int) list;
  o_m : Interp.machine;
}

let observe ~engine ?(extra = Hooks.nil) ~fuel p =
  let blocks = ref [] in
  let bx = ref [] in
  let spans = ref [] in
  let branches = ref [] in
  let sys = ref [] in
  let m = Interp.create ~entry:0 () in
  let hooks =
    Hooks.seq
      {
        Hooks.nil with
        Hooks.on_block = (fun bb -> blocks := bb :: !blocks);
        on_block_exec = (fun bb n -> bx := (bb, n) :: !bx);
        on_block_span = (fun pc0 n -> spans := (pc0, n) :: !spans);
        on_branch = (fun pc t -> branches := (pc, t) :: !branches);
      }
      extra
  in
  let syscall n =
    sys := (n, m.Interp.icount) :: !sys;
    B.test_syscall n
  in
  let o_out =
    try
      match Interp.run ~engine ~hooks ~syscall ~fuel p m with
      | Interp.Halted -> B.R_halted
      | Interp.Out_of_fuel -> B.R_fuel
    with Interp.Stack_error msg -> B.R_stack msg
  in
  {
    o_out;
    o_blocks = List.rev !blocks;
    o_bx = List.rev !bx;
    o_spans = List.rev !spans;
    o_branches = List.rev !branches;
    o_sys = List.rev !sys;
    o_m = m;
  }

let machines_match (a : Interp.machine) (b : Interp.machine) =
  Array.for_all2 ( = ) a.Interp.regs b.Interp.regs
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a.Interp.fregs b.Interp.fregs
  && a.Interp.pc = b.Interp.pc
  && a.Interp.sp = b.Interp.sp
  && a.Interp.icount = b.Interp.icount

let snapshot_bytes m =
  let buf = Buffer.create 256 in
  Snapshot.write buf (Snapshot.capture m);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Compiled engine vs the reference interpreter and the other tiers *)

let prop_compiled_agrees =
  QCheck.Test.make ~name:"compiled engine agrees with reference" ~count:400
    (QCheck.make B.prog_gen) (fun instrs ->
      let p = Program.of_instrs instrs in
      let _, bb_of_pc = B.ref_structure instrs in
      (* independent reference *)
      let st = B.ref_create 0 in
      let ref_events = ref [] in
      let ref_sys = ref [] in
      let ref_out =
        B.ref_run
          ~record:(fun e -> ref_events := e :: !ref_events)
          ~syscall:(fun n ->
            ref_sys := (n, st.B.r_icount) :: !ref_sys;
            B.test_syscall n)
          ~fuel:B.test_fuel instrs st
      in
      let ref_events = List.rev !ref_events in
      let ref_sys = List.rev !ref_sys in
      let ref_pcs = pc_stream_of_events ref_events in
      let ref_retires = B.retire_stream_of_events bb_of_pc ref_events in
      let ref_blocks =
        List.filter_map
          (function B.E_block bb -> Some bb | _ -> None)
          ref_events
      in
      let ref_branches =
        List.filter_map
          (function B.E_branch (pc, t) -> Some (pc, t) | _ -> None)
          ref_events
      in
      let agrees (o : obs) =
        o.o_out = ref_out && o.o_blocks = ref_blocks
        && B.expand_block_exec o.o_bx = ref_retires
        (* spans carry positions: expanding them must reproduce the
           exact per-retirement pc stream, not just block ids *)
        && pcs_of_spans o.o_spans = ref_pcs
        && o.o_branches = ref_branches
        && o.o_sys = ref_sys
        && B.state_matches st o.o_m ref_events
      in
      let oc = observe ~engine:Interp.Compiled ~fuel:B.test_fuel p in
      let ob = observe ~engine:Interp.Block_step ~fuel:B.test_fuel p in
      let oh = observe ~engine:Interp.Reference ~fuel:B.test_fuel p in
      (* same hook set forced onto the per-instruction family *)
      let oi =
        observe ~engine:Interp.Compiled
          ~extra:{ Hooks.nil with Hooks.on_instr = (fun _ _ -> ()) }
          ~fuel:B.test_fuel p
      in
      (* hooks-free compiled run: outcome and final state only *)
      let m0 = Interp.create ~entry:0 () in
      let out0 =
        try
          match
            Interp.run ~engine:Interp.Compiled ~syscall:B.test_syscall
              ~fuel:B.test_fuel p m0
          with
          | Interp.Halted -> B.R_halted
          | Interp.Out_of_fuel -> B.R_fuel
        with Interp.Stack_error msg -> B.R_stack msg
      in
      agrees oc && agrees ob && agrees oh && agrees oi
      (* block tiers may deliver one span per block entry, the
         per-instruction tier one per retirement — but never more
         spans than retirements, and at least one per block entry *)
      && List.length oc.o_spans <= List.length ref_pcs
      && List.length oc.o_spans >= List.length ref_blocks
      && List.length oi.o_spans = List.length ref_pcs
      && out0 = ref_out
      && machines_match m0 oc.o_m)

(* ------------------------------------------------------------------ *)
(* Fuel splits: resuming the compiled engine in arbitrary chunks is
   bit-identical to one uninterrupted run and to block-stepping; chunk
   sizes range past typical superblock lengths so chains execute *)

let prop_compiled_fuel_split =
  QCheck.Test.make ~name:"compiled engine is fuel-split invariant" ~count:300
    (QCheck.make QCheck.Gen.(pair B.prog_gen (int_range 1 80)))
    (fun (instrs, chunk) ->
      let p = Program.of_instrs instrs in
      let chunked engine =
        let blocks = ref [] in
        let bx = ref [] in
        let spans = ref [] in
        let sys = ref [] in
        let m = Interp.create ~entry:0 () in
        let hooks =
          {
            Hooks.nil with
            Hooks.on_block = (fun bb -> blocks := bb :: !blocks);
            on_block_exec = (fun bb n -> bx := (bb, n) :: !bx);
            on_block_span = (fun pc0 n -> spans := (pc0, n) :: !spans);
          }
        in
        let syscall n =
          sys := (n, m.Interp.icount) :: !sys;
          B.test_syscall n
        in
        let outcome = ref B.R_fuel in
        let left = ref B.test_fuel in
        (try
           while !left > 0 && !outcome = B.R_fuel do
             let f = min chunk !left in
             left := !left - f;
             match Interp.run ~engine ~hooks ~syscall ~fuel:f p m with
             | Interp.Halted -> outcome := B.R_halted
             | Interp.Out_of_fuel -> ()
           done
         with Interp.Stack_error msg -> outcome := B.R_stack msg);
        ( !outcome,
          List.rev !blocks,
          B.expand_block_exec (List.rev !bx),
          pcs_of_spans (List.rev !spans),
          List.rev !sys,
          m )
      in
      let oc = observe ~engine:Interp.Compiled ~fuel:B.test_fuel p in
      let check (out, blocks, retires, pcs, sys, m) =
        out = oc.o_out && blocks = oc.o_blocks
        && retires = B.expand_block_exec oc.o_bx
        && pcs = pcs_of_spans oc.o_spans
        && sys = oc.o_sys
        && machines_match m oc.o_m
        && snapshot_bytes m = snapshot_bytes oc.o_m
      in
      check (chunked Interp.Compiled) && check (chunked Interp.Block_step))

(* ------------------------------------------------------------------ *)
(* Syscall handlers that raise: the exception must escape every tier at
   the same observation point, with the machine showing the exact pc and
   retirement index of the faulting [Sys] (chained bulk icount rolled
   back), so pinball logging is tier-independent *)

exception Boom

let prop_syscall_raise =
  QCheck.Test.make ~name:"raising syscall handlers are tier-independent"
    ~count:300
    (QCheck.make QCheck.Gen.(pair B.prog_gen (int_range 1 4)))
    (fun (instrs, fatal) ->
      let p = Program.of_instrs instrs in
      let run engine =
        let sys = ref [] in
        let calls = ref 0 in
        let m = Interp.create ~entry:0 () in
        let syscall n =
          incr calls;
          sys := (n, m.Interp.icount, m.Interp.pc) :: !sys;
          if !calls = fatal then raise Boom;
          B.test_syscall n
        in
        let out =
          try
            match
              Interp.run ~engine ~syscall ~fuel:B.test_fuel p m
            with
            | Interp.Halted -> `Halted
            | Interp.Out_of_fuel -> `Fuel
          with
          | Boom -> `Boom
          | Interp.Stack_error _ -> `Stack
        in
        (out, List.rev !sys, m)
      in
      let out_c, sys_c, m_c = run Interp.Compiled in
      let out_b, sys_b, m_b = run Interp.Block_step in
      let out_r, sys_r, m_r = run Interp.Reference in
      out_c = out_b && out_c = out_r && sys_c = sys_b && sys_c = sys_r
      && machines_match m_c m_b
      && machines_match m_c m_r)

(* ------------------------------------------------------------------ *)
(* The combined single-pass profiler: one compiled replay must produce
   the BBV slices, ldst mix and per-kind counts of three dedicated-tool
   replays, bit for bit *)

let prop_profile_combined =
  QCheck.Test.make ~name:"combined profiler equals three dedicated replays"
    ~count:300
    (QCheck.make QCheck.Gen.(pair B.prog_gen (int_range 3 9)))
    (fun (instrs, slice_len) ->
      let p = Program.of_instrs instrs in
      let replay ~engine hooks =
        let m = Interp.create ~entry:0 () in
        try
          ignore
            (Interp.run ~engine ~hooks ~syscall:B.test_syscall
               ~fuel:B.test_fuel p m)
        with Interp.Stack_error _ -> ()
      in
      (* one combined replay on the compiled tier *)
      let prof = Profile_tool.create ~slice_len p in
      replay ~engine:Interp.Compiled (Profile_tool.hooks prof);
      Profile_tool.finish prof;
      (* three dedicated replays, each on its natural tier *)
      let bbv = Bbv_tool.create ~slice_len p in
      replay ~engine:Interp.Block_step (Bbv_tool.hooks bbv);
      Bbv_tool.finish bbv;
      let mixt = Ldstmix.create () in
      replay ~engine:Interp.Reference (Ldstmix.hooks mixt);
      let ins = Inscount.create () in
      replay ~engine:Interp.Reference (Inscount.hooks ins);
      let mix_bits (x : Mix.t) =
        ( Int64.bits_of_float x.Mix.no_mem,
          Int64.bits_of_float x.Mix.mem_r,
          Int64.bits_of_float x.Mix.mem_w,
          Int64.bits_of_float x.Mix.mem_rw )
      in
      let kinds = List.init Isa.num_kinds Isa.kind_of_code in
      Profile_tool.hooks prof |> Hooks.block_level
      && Array.length (Profile_tool.slices prof)
         = Array.length (Bbv_tool.slices bbv)
      && Array.for_all2 B.slice_eq (Profile_tool.slices prof)
           (Bbv_tool.slices bbv)
      && Profile_tool.total prof = Inscount.total ins
      && List.for_all
           (fun k -> Profile_tool.by_kind prof k = Inscount.by_kind ins k)
           kinds
      && List.for_all
           (fun c -> Profile_tool.ldst_count prof c = Ldstmix.count mixt c)
           [ Isa.No_mem; Isa.Mem_r; Isa.Mem_w; Isa.Mem_rw ]
      && mix_bits (Profile_tool.ldst_mix prof) = mix_bits (Ldstmix.mix mixt))

(* ------------------------------------------------------------------ *)
(* Per-program compilation cache: repeated runs (cache hits) and many
   distinct programs (evictions) keep behaving like fresh compiles *)

let test_cache_reuse_and_eviction () =
  let mk i =
    let a = Asm.create ~name:(Printf.sprintf "p%d" i) () in
    Asm.li a 1 i;
    Asm.alui a Isa.Add 1 1 1;
    Asm.halt a;
    Asm.assemble a
  in
  let progs = Array.init 40 mk in
  (* interleave two passes so early programs are re-run after the cache
     (limit 32) has evicted them *)
  for pass = 1 to 2 do
    Array.iteri
      (fun i p ->
        let m = Interp.create ~entry:p.Program.entry () in
        (match Interp.run ~engine:Interp.Compiled p m with
        | Interp.Halted -> ()
        | Interp.Out_of_fuel -> Alcotest.fail "unexpected out-of-fuel");
        Alcotest.(check int)
          (Printf.sprintf "pass %d: p%d result" pass i)
          (i + 1) m.Interp.regs.(1);
        Alcotest.(check int)
          (Printf.sprintf "pass %d: p%d icount" pass i)
          3 m.Interp.icount)
      progs
  done

(* ------------------------------------------------------------------ *)
(* Projection: the row-memoised implementation must be bit-identical to
   the direct per-entry hashing it replaced *)

let naive_project ~dim ~seed (slices : Bbv_tool.slice array) =
  Array.map
    (fun (s : Bbv_tool.slice) ->
      let v = Array.make dim 0.0 in
      let total = float_of_int s.Bbv_tool.length in
      if total > 0.0 then
        Array.iter
          (fun (block, count) ->
            let w = float_of_int count /. total in
            for d = 0 to dim - 1 do
              v.(d) <-
                v.(d)
                +. (w *. Sp_simpoint.Projection.matrix_entry ~seed ~block ~dim:d)
            done)
          s.Bbv_tool.bbv;
      v)
    slices

let slices_gen =
  QCheck.Gen.(
    list_size (1 -- 20)
      (list_size (0 -- 12) (pair (int_range 0 500) (int_range 1 20)))
    >|= fun slices ->
    Array.of_list
      (List.mapi
         (fun i bbv ->
           let bbv =
             (* distinct blocks, sorted, as Bbv_tool emits *)
             List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b) bbv
           in
           let length = List.fold_left (fun acc (_, c) -> acc + c) 0 bbv in
           {
             Bbv_tool.index = i;
             start_icount = i * 100;
             length;
             bbv = Array.of_list bbv;
           })
         slices))

let prop_projection_bit_identical =
  QCheck.Test.make ~name:"memoised projection is bit-identical" ~count:200
    (QCheck.make QCheck.Gen.(pair slices_gen (pair (int_range 1 9) (1 -- 6))))
    (fun (slices, (seed, dim)) ->
      let fast = Sp_simpoint.Projection.project ~dim ~seed slices in
      let slow = naive_project ~dim ~seed slices in
      Array.for_all2
        (Array.for_all2 (fun a b ->
             Int64.bits_of_float a = Int64.bits_of_float b))
        fast slow)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_compiled_agrees;
    QCheck_alcotest.to_alcotest prop_compiled_fuel_split;
    QCheck_alcotest.to_alcotest prop_syscall_raise;
    QCheck_alcotest.to_alcotest prop_profile_combined;
    Alcotest.test_case "compiled cache reuse and eviction" `Quick
      test_cache_reuse_and_eviction;
    QCheck_alcotest.to_alcotest prop_projection_bit_identical;
  ]
