(* Tests for Sp_util: RNG, statistics, scale, time model, tables. *)

open Sp_util

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_rng_split () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* the split stream must not just replay the parent *)
  let parent = Array.init 32 (fun _ -> Rng.int64 a) in
  let child = Array.init 32 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split differs" true (parent <> child)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)

let test_rng_gaussian_moments () =
  let rng = Rng.create 5 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mu:3.0 ~sigma:2.0) in
  check_close 0.1 "mean" 3.0 (Stats.mean xs);
  check_close 0.1 "stddev" 2.0 (Stats.stddev xs)

let prop_int_bounds =
  QCheck.Test.make ~name:"Rng.int in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let prop_float_bounds =
  QCheck.Test.make ~name:"Rng.float in bounds" ~count:500
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.float rng bound in
      x >= 0.0 && x < bound)

let prop_shuffle_permutes =
  QCheck.Test.make ~name:"Rng.shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let a = Array.of_list xs in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_mean_variance () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean xs);
  check_float "variance" 4.0 (Stats.variance xs);
  check_float "stddev" 2.0 (Stats.stddev xs)

let test_empty_stats () =
  check_float "mean []" 0.0 (Stats.mean [||]);
  check_float "variance [x]" 0.0 (Stats.variance [| 5.0 |])

let test_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [| 2.0; 8.0 |])

let test_weighted_mean () =
  check_float "weighted"
    (10.0 *. 0.75 +. (20.0 *. 0.25))
    (Stats.weighted_mean ~weights:[| 3.0; 1.0 |] [| 10.0; 20.0 |]);
  (* zero weights fall back to the plain mean *)
  check_float "zero weights" 15.0
    (Stats.weighted_mean ~weights:[| 0.0; 0.0 |] [| 10.0; 20.0 |])

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 4.0 (Stats.percentile xs 100.0);
  check_float "p50" 2.5 (Stats.percentile xs 50.0)

let test_rel_error () =
  check_float "basic" 10.0 (Stats.rel_error_pct ~reference:10.0 11.0);
  check_float "zero ref zero x" 0.0 (Stats.rel_error_pct ~reference:0.0 0.0);
  check_float "zero ref" 100.0 (Stats.rel_error_pct ~reference:0.0 5.0)

let test_pearson () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0 ) xs in
  check_close 1e-9 "perfect" 1.0 (Stats.pearson xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_close 1e-9 "anti" (-1.0) (Stats.pearson xs zs);
  check_float "constant" 0.0 (Stats.pearson xs [| 1.0; 1.0; 1.0; 1.0 |])

let prop_normalize =
  QCheck.Test.make ~name:"Stats.normalize sums to 1" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (float_range 0.0 100.0))
    (fun xs ->
      let a = Stats.normalize (Array.of_list xs) in
      Float.abs (Stats.sum a -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Scale / Timemodel *)

let test_scale () =
  Alcotest.(check int)
    "30M slice" (30 * Scale.sim_insns_per_minsn)
    (Scale.of_minsn 30);
  check_close 1.0 "roundtrip" 30e6
    (Scale.paper_insns_of_sim (Scale.of_minsn 30));
  List.iter
    (fun m ->
      Alcotest.(check int) "micro divides" 0 (m mod Scale.micro_slice_minsn))
    [ 15; 25; 30; 50; 100 ]

let test_timemodel_calibration () =
  (* the rate model must reproduce the paper's own wall-clock anchors *)
  let whole_h =
    Timemodel.seconds Timemodel.Whole ~paper_insns:6873.9e9 /. 3600.0
  in
  check_close 2.0 "whole 213.2h" 213.2 whole_h;
  let regional_min =
    Timemodel.seconds Timemodel.Regional ~paper_insns:10.4e9 /. 60.0
  in
  check_close 0.5 "regional 17.17min" 17.17 regional_min

let test_timemodel_native () =
  check_close 1e-6 "native" 2.0
    (Timemodel.native_seconds ~paper_insns:3.4e9 ~cpi:2.0 ~ghz:3.4)

let test_pp_duration () =
  let s x = Format.asprintf "%a" Timemodel.pp_duration x in
  Alcotest.(check string) "hours" "2.0 h" (s 7200.0);
  Alcotest.(check string) "minutes" "2.00 min" (s 120.0);
  Alcotest.(check string) "seconds" "1.50 s" (s 1.5);
  Alcotest.(check string) "ms" "12.0 ms" (s 0.012)

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t =
    Table.create ~title:"T" [ ("a", Table.Left); ("bb", Table.Right) ]
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "longer"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  List.iter
    (fun cell ->
      Alcotest.(check bool)
        (cell ^ " present") true
        (Astring_contains.contains s cell))
    [ "longer"; "22"; "bb" ]

let test_table_wrong_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_fmt () =
  Alcotest.(check string) "int commas" "1,234,567" (Table.fmt_int 1234567);
  Alcotest.(check string) "negative" "-1,000" (Table.fmt_int (-1000));
  Alcotest.(check string) "pct" "12.35%" (Table.fmt_pct 12.345);
  Alcotest.(check string) "x" "2.0x" (Table.fmt_x 2.0)

(* ------------------------------------------------------------------ *)
(* Crc32 / Binio (pinball format v2 plumbing) *)

let test_crc32 () =
  (* the standard check value for the IEEE 802.3 polynomial *)
  Alcotest.(check int) "check vector" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  let s = "the quick brown fox jumps over the lazy dog" in
  Alcotest.(check int) "sub = string on full range" (Crc32.string s)
    (Crc32.sub s ~pos:0 ~len:(String.length s));
  (* chaining across an arbitrary split point matches the one-shot *)
  let k = 17 in
  let chained =
    Crc32.update (Crc32.update 0 s 0 k) s k (String.length s - k)
  in
  Alcotest.(check int) "update chains" (Crc32.string s) chained;
  (* any single-bit flip changes the checksum *)
  let b = Bytes.of_string s in
  Bytes.set b 20 (Char.chr (Char.code s.[20] lxor 0x10));
  Alcotest.(check bool) "bit flip detected" true
    (Crc32.string (Bytes.to_string b) <> Crc32.string s)

let test_binio_roundtrip () =
  let b = Buffer.create 128 in
  Binio.w_u8 b 0xAB;
  Binio.w_u32 b 0xDEADBEEF;
  Binio.w_i64 b (-42);
  Binio.w_i64 b max_int;
  Binio.w_f64 b 3.14159;
  Binio.w_f64 b (-0.0);
  Binio.w_string b "hello";
  Binio.w_string b "";
  Binio.w_int_array b [| 1; -2; 3 |];
  Binio.w_float_array b [| 0.5; infinity |];
  let r = Binio.reader (Buffer.contents b) in
  Alcotest.(check int) "u8" 0xAB (Binio.r_u8 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Binio.r_u32 r);
  Alcotest.(check int) "i64 negative" (-42) (Binio.r_i64 r);
  Alcotest.(check int) "i64 max" max_int (Binio.r_i64 r);
  check_float "f64" 3.14159 (Binio.r_f64 r);
  Alcotest.(check bool) "negative zero preserved" true
    (1.0 /. Binio.r_f64 r = neg_infinity);
  Alcotest.(check string) "string" "hello" (Binio.r_string r);
  Alcotest.(check string) "empty string" "" (Binio.r_string r);
  Alcotest.(check (array int)) "int array" [| 1; -2; 3 |] (Binio.r_int_array r);
  Alcotest.(check bool) "float array" true
    (Binio.r_float_array r = [| 0.5; infinity |]);
  Binio.expect_end r "test";
  Alcotest.(check int) "nothing left" 0 (Binio.remaining r)

(* The production [Crc32.update] is slicing-by-8; this is the classic
   one-table byte-at-a-time reference it must agree with everywhere —
   arbitrary strings, arbitrary split points, arbitrary chaining. *)
let crc_reference_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc_reference_update crc s pos len =
  let t = Lazy.force crc_reference_table in
  let c = ref (crc lxor 0xFFFF_FFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFF_FFFF

let prop_crc32_matches_reference =
  QCheck.Test.make ~name:"crc32 slicing-by-8 = one-table reference" ~count:300
    QCheck.(
      pair (string_gen_of_size Gen.(0 -- 200) Gen.char) (pair small_nat small_nat))
    (fun (s, (a, b)) ->
      let n = String.length s in
      (* two arbitrary split points: one-shot, sub-ranges and chained
         updates must all agree with the reference *)
      let i = if n = 0 then 0 else a mod (n + 1) in
      let j = if n = 0 then 0 else i + (b mod (n - i + 1)) in
      Crc32.string s = crc_reference_update 0 s 0 n
      && Crc32.sub s ~pos:i ~len:(j - i) = crc_reference_update 0 s i (j - i)
      && Crc32.update
           (Crc32.update (Crc32.update 0 s 0 i) s i (j - i))
           s j (n - j)
         = crc_reference_update 0 s 0 n)

let prop_binio_bulk_bytes_identical =
  QCheck.Test.make
    ~name:"binio bulk writers byte-identical to per-element" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 100) int)
        (list_of_size Gen.(0 -- 100) float))
    (fun (is, fs) ->
      let ia = Array.of_list is and fa = Array.of_list fs in
      let bulk = Buffer.create 64 and each = Buffer.create 64 in
      Binio.w_i64s bulk ia;
      Binio.w_f64s bulk fa;
      Array.iter (Binio.w_i64 each) ia;
      Array.iter (Binio.w_f64 each) fa;
      Buffer.contents bulk = Buffer.contents each)

let test_binio_bulk_roundtrip () =
  let ia = [| min_int; -1; 0; 1; max_int; 0x0123_4567_89AB_CDEF |] in
  let fa = [| 0.0; -0.0; 1.5; infinity; neg_infinity; nan; 1e-300 |] in
  let b = Buffer.create 128 in
  Binio.w_i64s b ia;
  Binio.w_f64s b fa;
  let r = Binio.reader (Buffer.contents b) in
  Alcotest.(check (array int)) "i64 block" ia
    (Binio.r_i64s r (Array.length ia));
  (* structural compare: NaN- and signed-zero-exact *)
  Alcotest.(check bool) "f64 block bit-exact" true
    (Stdlib.compare fa (Binio.r_f64s r (Array.length fa)) = 0);
  Binio.expect_end r "bulk";
  (* a truncated block fails up front with the one typed error *)
  let r = Binio.reader (String.sub (Buffer.contents b) 0 17) in
  match Binio.r_i64s r 3 with
  | _ -> Alcotest.fail "truncated block: expected Corrupt"
  | exception Binio.Corrupt _ -> ()

let test_binio_bounds () =
  let expect_corrupt what f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Corrupt" what
    | exception Binio.Corrupt _ -> ()
  in
  let r () = Binio.reader "\x02\x00\x00\x00ab" in
  (* a count field is rejected before any allocation when fewer than
     count * elem_bytes bytes remain *)
  expect_corrupt "oversized count" (fun () ->
      Binio.r_count (r ()) ~elem_bytes:8 "elems");
  Alcotest.(check int) "plausible count accepted" 2
    (Binio.r_count (r ()) ~elem_bytes:1 "elems");
  expect_corrupt "read past end" (fun () -> Binio.r_i64 (r ()));
  expect_corrupt "skip past end" (fun () -> Binio.skip (r ()) 7);
  expect_corrupt "trailing bytes" (fun () ->
      let r = r () in
      Binio.skip r 2;
      Binio.expect_end r "test")

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng split" `Quick test_rng_split;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    QCheck_alcotest.to_alcotest prop_int_bounds;
    QCheck_alcotest.to_alcotest prop_float_bounds;
    QCheck_alcotest.to_alcotest prop_shuffle_permutes;
    Alcotest.test_case "mean/variance" `Quick test_mean_variance;
    Alcotest.test_case "empty stats" `Quick test_empty_stats;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "relative error" `Quick test_rel_error;
    Alcotest.test_case "pearson" `Quick test_pearson;
    QCheck_alcotest.to_alcotest prop_normalize;
    Alcotest.test_case "scale constants" `Quick test_scale;
    Alcotest.test_case "timemodel calibration" `Quick test_timemodel_calibration;
    Alcotest.test_case "timemodel native" `Quick test_timemodel_native;
    Alcotest.test_case "pp duration" `Quick test_pp_duration;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_wrong_arity;
    Alcotest.test_case "formatting" `Quick test_fmt;
    Alcotest.test_case "crc32" `Quick test_crc32;
    QCheck_alcotest.to_alcotest prop_crc32_matches_reference;
    Alcotest.test_case "binio roundtrip" `Quick test_binio_roundtrip;
    QCheck_alcotest.to_alcotest prop_binio_bulk_bytes_identical;
    Alcotest.test_case "binio bulk roundtrip" `Quick test_binio_bulk_roundtrip;
    Alcotest.test_case "binio bounds" `Quick test_binio_bounds;
  ]
