(* Integration tests for the Specrepro pipeline and experiment
   machinery, on a shrunken benchmark so the whole flow stays fast. *)

open Specrepro

let tiny_options =
  {
    Pipeline.default_options with
    slices_scale = 0.05;
    collect_variance = true;
    variance_ks = [ 3; 8 ];
    progress = false;
  }

(* one pipeline run shared by the tests below *)
let result =
  lazy (Pipeline.run_benchmark ~options:tiny_options (Sp_workloads.Suite.find "620.omnetpp_s"))

let test_pipeline_basics () =
  let r = Lazy.force result in
  Alcotest.(check bool) "instructions executed" true (r.Pipeline.whole_insns > 100_000);
  Alcotest.(check bool) "points found" true
    (Array.length r.Pipeline.selection.points > 0);
  Alcotest.(check (float 1e-6)) "weights sum to 1" 1.0
    (Array.fold_left
       (fun acc (p : Sp_simpoint.Simpoints.point) -> acc +. p.weight)
       0.0 r.Pipeline.selection.points);
  Alcotest.(check int) "cold stats per point"
    (Array.length r.Pipeline.selection.points)
    (List.length r.Pipeline.point_stats);
  Alcotest.(check int) "warm stats per point"
    (Array.length r.Pipeline.selection.points)
    (List.length r.Pipeline.warm_point_stats)

let test_regional_mix_matches_whole () =
  let r = Lazy.force result in
  let reg = Pipeline.regional r in
  let err = Runstats.mix_error_pp ~reference:r.Pipeline.whole reg in
  Alcotest.(check bool)
    (Printf.sprintf "mix error %.2fpp < 3pp" err)
    true (err < 3.0)

let test_reduced_subset () =
  let r = Lazy.force result in
  let n = Array.length r.Pipeline.selection.points in
  let n90 = Pipeline.reduced_count r in
  Alcotest.(check bool) "reduced smaller" true (n90 <= n);
  let red = Pipeline.reduced r in
  let reg = Pipeline.regional r in
  Alcotest.(check bool) "fewer instructions" true
    (red.Runstats.insns <= reg.Runstats.insns);
  (* coverage sweep is monotone in kept instructions *)
  let i50 = (Pipeline.reduced ~coverage:0.5 r).Runstats.insns in
  Alcotest.(check bool) "50th percentile smaller" true (i50 <= red.Runstats.insns)

let test_variance_collected () =
  let r = Lazy.force result in
  Alcotest.(check int) "sweep points" 2 (List.length r.Pipeline.variance);
  match r.Pipeline.variance with
  | [ a; b ] ->
      Alcotest.(check bool) "variance decreases in k" true
        (a.Sp_simpoint.Variance.avg_variance >= b.Sp_simpoint.Variance.avg_variance)
  | _ -> Alcotest.fail "expected 2"

let test_native_sample () =
  let r = Lazy.force result in
  let cpi = Sp_perf.Perf_counters.cpi r.Pipeline.native in
  Alcotest.(check bool) "plausible CPI" true (cpi > 0.1 && cpi < 20.0);
  (* native CPI close to the whole-run model CPI (same model + noise) *)
  let err =
    Sp_util.Stats.rel_error_pct ~reference:r.Pipeline.whole.Runstats.cpi cpi
  in
  Alcotest.(check bool) (Printf.sprintf "err %.1f%%" err) true (err < 20.0)

(* ------------------------------------------------------------------ *)
(* Runstats aggregation *)

let mk_point ~cluster ~weight ~insns ~misses ~accesses ~cpi =
  let level ~misses ~accesses =
    {
      Sp_cache.Hierarchy.accesses;
      misses;
      miss_rate =
        (if accesses = 0 then 0.0
         else float_of_int misses /. float_of_int accesses);
    }
  in
  {
    Runstats.cluster;
    weight;
    insns;
    mix = Sp_pin.Mix.zero;
    cache =
      {
        Sp_cache.Hierarchy.l1i = level ~misses:0 ~accesses:0;
        l1d = level ~misses ~accesses;
        l2 = level ~misses ~accesses;
        l3 = level ~misses ~accesses;
      };
    cpi;
  }

let test_of_points_rate_aggregation () =
  (* two equal-weight points: one with many accesses at low miss rate,
     one with few accesses at 100%.  The aggregate must be the
     access-density-weighted ratio, not the average of the two rates. *)
  let p1 = mk_point ~cluster:0 ~weight:0.5 ~insns:1000 ~misses:10 ~accesses:1000 ~cpi:1.0 in
  let p2 = mk_point ~cluster:1 ~weight:0.5 ~insns:1000 ~misses:10 ~accesses:10 ~cpi:3.0 in
  let agg = Runstats.of_points ~label:"t" [ p1; p2 ] in
  (* pooled: (10+10) misses over (1000+10) accesses *)
  Alcotest.(check (float 1e-9)) "pooled rate" (20.0 /. 1010.0) agg.Runstats.l1d_miss;
  Alcotest.(check (float 1e-9)) "cpi weighted" 2.0 agg.Runstats.cpi;
  Alcotest.(check (float 1e-9)) "insns summed" 2000.0 agg.Runstats.insns

let test_of_points_weight_renormalised () =
  (* a 90th-percentile subset keeps absolute weights; aggregation must
     renormalise internally *)
  let p1 = mk_point ~cluster:0 ~weight:0.6 ~insns:100 ~misses:0 ~accesses:100 ~cpi:1.0 in
  let p2 = mk_point ~cluster:1 ~weight:0.3 ~insns:100 ~misses:0 ~accesses:100 ~cpi:2.0 in
  let agg = Runstats.of_points ~label:"t" [ p1; p2 ] in
  Alcotest.(check (float 1e-9)) "renormalised cpi"
    ((0.6 *. 1.0 /. 0.9) +. (0.3 *. 2.0 /. 0.9))
    agg.Runstats.cpi

let test_miss_rate_error () =
  let whole =
    Runstats.of_whole ~label:"w" ~insns:100 ~mix:Sp_pin.Mix.zero
      ~cache:
        {
          Sp_cache.Hierarchy.l1i = { accesses = 0; misses = 0; miss_rate = 0.0 };
          l1d = { accesses = 100; misses = 10; miss_rate = 0.1 };
          l2 = { accesses = 10; misses = 5; miss_rate = 0.5 };
          l3 = { accesses = 5; misses = 1; miss_rate = 0.2 };
        }
      ~cpi:1.0
  in
  let other = { whole with Runstats.l1d_miss = 0.2; l3_miss = 0.3 } in
  let l1d, l2, l3 = Runstats.miss_rate_error_pct ~reference:whole other in
  Alcotest.(check (float 1e-9)) "l1d +100%" 100.0 l1d;
  Alcotest.(check (float 1e-9)) "l2 0%" 0.0 l2;
  Alcotest.(check (float 1e-9)) "l3 +50%" 50.0 l3

(* ------------------------------------------------------------------ *)
(* Experiments (static parts) *)

let test_table1_renders () =
  let s = Sp_util.Table.render (Experiments.table1 ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Astring_contains.contains s needle))
    [ "L1I"; "L3"; "direct-mapped"; "16384kB" ]

let test_table3_renders () =
  let s = Experiments.table3 () in
  Alcotest.(check bool) "has model" true
    (Astring_contains.contains s "Intel i7-3770")

let test_table2_and_headlines () =
  let r = Lazy.force result in
  let t = Sp_util.Table.render (Experiments.table2 [ r ]) in
  Alcotest.(check bool) "benchmark row" true
    (Astring_contains.contains t "620.omnetpp_s");
  let hs = Experiments.headlines [ r ] in
  Alcotest.(check bool) "headlines populated" true (List.length hs >= 8);
  List.iter
    (fun (h : Experiments.headline) ->
      Alcotest.(check bool) (h.metric ^ " measured") true
        (String.length h.measured > 0))
    hs

let test_fig_tables_render () =
  let r = Lazy.force result in
  List.iter
    (fun (name, table) ->
      let s = Sp_util.Table.render table in
      Alcotest.(check bool) (name ^ " mentions benchmark") true
        (Astring_contains.contains s "620.omnetpp_s"))
    [
      ("fig4", Experiments.fig4 [ r ]);
      ("fig5", Experiments.fig5 [ r ]);
      ("fig6", Experiments.fig6 [ r ]);
      ("fig7", Experiments.fig7 [ r ]);
      ("fig8", Experiments.fig8 [ r ]);
      ("fig10", Experiments.fig10 [ r ]);
      ("fig12", Experiments.fig12 [ r ]);
    ];
  (* the cpistack extension table *)
  let sk = Sp_util.Table.render (Experiments.cpistack [ r ]) in
  Alcotest.(check bool) "cpistack row" true
    (Astring_contains.contains sk "620.omnetpp_s");
  (* figure-shape charts render *)
  Alcotest.(check bool) "fig9 chart" true
    (String.length (Experiments.fig9_chart [ r ]) > 100);
  (* fig9 rows are percentiles, not benchmarks *)
  let s9 =
    Sp_util.Table.render (Experiments.fig9 ~percentiles:[ 100; 50 ] [ r ])
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("fig9 " ^ needle) true
        (Astring_contains.contains s9 needle))
    [ "100"; "50"; "CPI err" ]

let test_pipeline_deterministic () =
  (* bit-for-bit reproducibility: the whole pipeline is seeded *)
  let run () =
    let r =
      Pipeline.run_benchmark ~options:tiny_options
        (Sp_workloads.Suite.find "648.exchange2_s")
    in
    ( r.Pipeline.whole_insns,
      r.Pipeline.selection.chosen_k,
      Array.map (fun (p : Sp_simpoint.Simpoints.point) -> (p.slice_index, p.weight))
        r.Pipeline.selection.points,
      (Pipeline.regional r).Runstats.cpi,
      (Pipeline.warmup_regional r).Runstats.l3_miss )
  in
  Alcotest.(check bool) "identical reruns" true (run () = run ())

let test_pinball_cache_reuse () =
  let dir = Filename.temp_file "spcache" "" in
  Sys.remove dir;
  let spec = Sp_workloads.Suite.find "648.exchange2_s" in
  let options =
    (* mem_cache_mb = 0: this test exercises the on-disk layer
       (quarantine, re-store), which the in-memory cache would mask *)
    {
      tiny_options with
      collect_variance = false;
      pinball_cache = Some dir;
      mem_cache_mb = 0;
    }
  in
  let fingerprint r =
    ( r.Pipeline.whole_insns,
      r.Pipeline.selection.chosen_k,
      Array.map (fun (p : Sp_simpoint.Simpoints.point) -> (p.slice_index, p.weight))
        r.Pipeline.selection.points,
      (Pipeline.regional r).Runstats.cpi,
      (Pipeline.warmup_regional r).Runstats.l3_miss )
  in
  let baseline =
    fingerprint
      (Pipeline.run_benchmark ~options:{ options with pinball_cache = None } spec)
  in
  (* a cold cached run logs, stores, and matches the uncached run *)
  let cold = fingerprint (Pipeline.run_benchmark ~options spec) in
  Alcotest.(check bool) "cold cached run matches uncached" true (cold = baseline);
  let key =
    Sp_pinball.Artifact_cache.key ~benchmark:"648.exchange2_s"
      ~slice_insns:options.Pipeline.slice_insns
      ~slices_scale:options.Pipeline.slices_scale
  in
  let entry = Sp_pinball.Artifact_cache.whole_path ~dir key in
  Alcotest.(check bool) "cache entry written" true (Sys.file_exists entry);
  (* a warm run replays the stored pinball; stats stay bit-identical *)
  let warm = fingerprint (Pipeline.run_benchmark ~options spec) in
  Alcotest.(check bool) "cache hit matches uncached" true (warm = baseline);
  (* corrupt the entry: the next run quarantines it, recomputes and
     re-stores — never fails *)
  let data = In_channel.with_open_bin entry In_channel.input_all in
  let broken = Bytes.of_string data in
  let mid = String.length data / 2 in
  Bytes.set broken mid (Char.chr (Char.code (Bytes.get broken mid) lxor 0x01));
  Out_channel.with_open_bin entry (fun oc -> Out_channel.output_bytes oc broken);
  let recomputed = fingerprint (Pipeline.run_benchmark ~options spec) in
  Alcotest.(check bool) "corrupt entry recomputed" true (recomputed = baseline);
  Alcotest.(check bool) "entry re-stored" true (Sys.file_exists entry);
  (match Sp_pinball.Store.verify entry with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "re-stored entry invalid: %s"
        (Sp_pinball.Store.error_message e));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_profile_cache_reuse () =
  let dir = Filename.temp_file "spprof" "" in
  Sys.remove dir;
  let spec = Sp_workloads.Suite.find "648.exchange2_s" in
  let options =
    (* mem_cache_mb = 0: the disk-layer hit/miss/quarantine counters
       below assume every lookup reaches the files *)
    {
      tiny_options with
      collect_variance = false;
      profile_cache = Some dir;
      mem_cache_mb = 0;
    }
  in
  (* everything the cached entry feeds: whole-run stats, the CPI-stack
     core stats, selection and both replay flavours *)
  let fingerprint (r : Pipeline.bench_result) =
    ( ( r.Pipeline.whole_insns,
        r.Pipeline.whole,
        r.Pipeline.whole_core,
        r.Pipeline.native ),
      ( r.Pipeline.selection.chosen_k,
        r.Pipeline.selection.points,
        r.Pipeline.point_stats,
        r.Pipeline.warm_point_stats ) )
  in
  let counter name =
    Option.value ~default:0.0
      (Sp_obs.Metrics.counter_value (Sp_obs.Metrics.stable_snapshot ()) name)
  in
  let baseline =
    fingerprint
      (Pipeline.run_benchmark
         ~options:{ options with profile_cache = None }
         spec)
  in
  (* a cold cached run profiles, stores, and matches the uncached run *)
  Sp_obs.Metrics.reset ();
  let cold = fingerprint (Pipeline.run_benchmark ~options spec) in
  Alcotest.(check bool) "cold cached run matches uncached" true
    (Stdlib.compare cold baseline = 0);
  Alcotest.(check (float 0.0)) "cold run misses once" 1.0
    (counter "profcache.misses");
  Alcotest.(check (float 0.0)) "cold run stores once" 1.0
    (counter "profcache.stores");
  let key =
    Sp_pinball.Profile_store.key ~benchmark:"648.exchange2_s"
      ~slice_insns:options.Pipeline.slice_insns
      ~slices_scale:options.Pipeline.slices_scale
      ~warmup_insns:options.Pipeline.warmup_insns
  in
  let entry = Sp_pinball.Profile_store.path ~dir ~key in
  Alcotest.(check bool) "profile entry written" true (Sys.file_exists entry);
  (* a warm run decodes the entry instead of re-profiling; every
     downstream statistic stays bit-identical *)
  Sp_obs.Metrics.reset ();
  let warm = fingerprint (Pipeline.run_benchmark ~options spec) in
  Alcotest.(check bool) "profile hit matches uncached" true
    (Stdlib.compare warm baseline = 0);
  Alcotest.(check (float 0.0)) "warm run hits once" 1.0
    (counter "profcache.hits");
  Alcotest.(check (float 0.0)) "warm run stores nothing" 0.0
    (counter "profcache.stores");
  (* corrupt the entry: quarantined, recomputed, re-stored — never
     fatal, still bit-identical *)
  let data = In_channel.with_open_bin entry In_channel.input_all in
  let broken = Bytes.of_string data in
  let mid = String.length data / 2 in
  Bytes.set broken mid (Char.chr (Char.code (Bytes.get broken mid) lxor 0x01));
  Out_channel.with_open_bin entry (fun oc -> Out_channel.output_bytes oc broken);
  Sp_obs.Metrics.reset ();
  let recomputed = fingerprint (Pipeline.run_benchmark ~options spec) in
  Alcotest.(check bool) "corrupt entry recomputed" true
    (Stdlib.compare recomputed baseline = 0);
  Alcotest.(check (float 0.0)) "quarantined once" 1.0
    (counter "profcache.quarantines");
  Alcotest.(check bool) "entry re-stored" true (Sys.file_exists entry);
  (match Sp_pinball.Profile_store.verify entry with
  | Ok () -> ()
  | Error e -> Alcotest.failf "re-stored entry invalid: %s" e);
  (* the shared-directory GC verifies .prof entries alongside .pb ones:
     the quarantined residue goes, valid entries of both kinds stay *)
  let gc = Sp_pinball.Artifact_cache.gc ~dir in
  Alcotest.(check bool) "gc swept the quarantined entry" true
    (gc.Sp_pinball.Artifact_cache.removed_quarantined >= 1);
  Alcotest.(check int) "gc removed nothing valid" 0
    gc.Sp_pinball.Artifact_cache.removed_corrupt;
  Alcotest.(check bool) "entry survives gc" true (Sys.file_exists entry);
  Sp_obs.Metrics.reset ();
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let suite =
  [
    Alcotest.test_case "pipeline basics" `Quick test_pipeline_basics;
    Alcotest.test_case "regional mix matches whole" `Quick test_regional_mix_matches_whole;
    Alcotest.test_case "reduced subset" `Quick test_reduced_subset;
    Alcotest.test_case "variance collected" `Quick test_variance_collected;
    Alcotest.test_case "native sample" `Quick test_native_sample;
    Alcotest.test_case "of_points rate aggregation" `Quick test_of_points_rate_aggregation;
    Alcotest.test_case "of_points renormalises" `Quick test_of_points_weight_renormalised;
    Alcotest.test_case "miss rate error" `Quick test_miss_rate_error;
    Alcotest.test_case "table1 renders" `Quick test_table1_renders;
    Alcotest.test_case "table3 renders" `Quick test_table3_renders;
    Alcotest.test_case "table2 + headlines" `Quick test_table2_and_headlines;
    Alcotest.test_case "figure tables render" `Quick test_fig_tables_render;
    Alcotest.test_case "pipeline deterministic" `Quick test_pipeline_deterministic;
    Alcotest.test_case "pinball cache reuse" `Quick test_pinball_cache_reuse;
    Alcotest.test_case "profile cache reuse" `Quick test_profile_cache_reuse;
  ]
