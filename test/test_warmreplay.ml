(* Differential tests for the parallel warm-replay stage.

   The pipeline replays warm points as self-contained warm-prefixed
   regional pinballs with fresh per-point tool state
   (Pipeline.warm_replay_points); the pre-parallel implementation — one
   shared forward scan with shared warm tools reset at each window
   start — is kept as Pipeline.warm_replay_points_scan.  Random halting
   programs (counted Asm loops with randomised load/store/ALU/syscall
   bodies) are run through both over warmup windows that exercise every
   clamping edge: zero, tiny, larger than the first region's start
   (clamped to program start), and windows straddling recorded-input
   instructions.  Point statistics must match bit for bit, for any job
   count, and the stable metrics fingerprint must be identical across
   job counts. *)

open Specrepro
open Sp_pin
open Sp_pinball

(* ------------------------------------------------------------------ *)
(* Halting random workloads: an Asm counted loop with a randomised
   body, so the whole execution can be logged to completion and is
   long enough to carve warm points out of.  r5 is the loop counter
   and r15 the conventional zero register; bodies keep clear of both. *)

type body_op =
  | B_store of int * int (* src reg, byte offset *)
  | B_load of int * int (* dst reg, byte offset *)
  | B_advance of int (* bump the r1 pointer, masked *)
  | B_alu of Sp_isa.Isa.alu_op * int * int * int
  | B_sys of int * int (* channel, dst reg *)

let emit_body a ops =
  List.iter
    (fun op ->
      match op with
      | B_store (rv, off) -> Sp_vm.Asm.store a rv 1 off
      | B_load (rd, off) -> Sp_vm.Asm.load a rd 1 off
      | B_advance imm ->
          Sp_vm.Asm.alui a Sp_isa.Isa.Add 1 1 imm;
          Sp_vm.Asm.alui a Sp_isa.Isa.And 1 1 0xFFFF
      | B_alu (op, rd, r1, r2) -> Sp_vm.Asm.alu a op rd r1 r2
      | B_sys (ch, rd) -> Sp_vm.Asm.sys a ch rd)
    ops

let build_program ~iters ops =
  let a = Sp_vm.Asm.create ~name:"warm-fixture" () in
  Sp_vm.Asm.li a 1 0;
  Sp_vm.Asm.loop_down a ~counter:5 ~from:iters (fun () -> emit_body a ops);
  Sp_vm.Asm.halt a;
  Sp_vm.Asm.assemble a

let body_op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun rv off -> B_store (rv, off * 8)) (2 -- 4) (0 -- 32));
        (3, map2 (fun rd off -> B_load (rd, off * 8)) (2 -- 4) (0 -- 32));
        (2, map (fun imm -> B_advance imm) (int_range 1 64));
        ( 2,
          map3
            (fun op rd (r1, r2) -> B_alu (op, rd, r1, r2))
            (oneofl [ Sp_isa.Isa.Add; Sp_isa.Isa.Sub; Sp_isa.Isa.Xor ])
            (2 -- 4)
            (pair (2 -- 4) (2 -- 4)) );
        (2, map2 (fun ch rd -> B_sys (ch, rd)) (0 -- 3) (6 -- 7));
      ])

(* a workload plus a point layout: (gap, length) pairs materialised
   against the logged execution's actual instruction total *)
let case_gen =
  QCheck.Gen.(
    triple (int_range 40 120)
      (list_size (1 -- 8) body_op_gen)
      (list_size (1 -- 4) (pair (0 -- 60) (5 -- 50))))

let points_of_spec total spec =
  let cursor = ref 0 and idx = ref 0 in
  List.filter_map
    (fun (gap, len) ->
      let start = !cursor + gap in
      if start + len > total then None
      else begin
        cursor := start + len;
        let i = !idx in
        incr idx;
        Some
          {
            Sp_simpoint.Simpoints.cluster = i;
            slice_index = i;
            start_icount = start;
            length = len;
            weight = 1.0 /. float_of_int (List.length spec);
          }
      end)
    spec

let options = { Pipeline.default_options with progress = false }

(* warmup windows covering every clamping edge: none, tiny, and one
   far larger than any region start (clamped against program start and
   the previous region's end); bodies emit Sys instructions, so the
   nonzero windows routinely straddle recorded inputs *)
let warmups = [ 0; 7; 10_000 ]

(* ------------------------------------------------------------------ *)
(* parallel pinball path ≡ shared-scan reference, and jobs-invariant *)

let prop_parallel_matches_scan =
  QCheck.Test.make ~name:"warm replay: parallel = scan reference, any jobs"
    ~count:60 (QCheck.make case_gen) (fun (iters, ops, spec) ->
      let prog = build_program ~iters ops in
      let whole = Logger.log_whole ~benchmark:"warm-diff" prog in
      let points =
        Array.of_list (points_of_spec whole.Logger.total_insns spec)
      in
      List.for_all
        (fun wu ->
          let scan =
            Pipeline.warm_replay_points_scan options ~warmup_insns:wu whole
              points
          in
          let par1 =
            Pipeline.warm_replay_points
              { options with jobs = 1 }
              ~warmup_insns:wu whole points
          in
          let par3 =
            Pipeline.warm_replay_points
              { options with jobs = 3 }
              ~warmup_insns:wu whole points
          in
          (* structural compare: bit-equal floats (and NaN-safe) *)
          Stdlib.compare scan par1 = 0 && Stdlib.compare par1 par3 = 0)
        warmups)

(* ------------------------------------------------------------------ *)
(* tool-level equivalence, including the TLB statistics that point
   stats do not surface: capture_warm_regions + replay_prefixed with
   per-point fresh tools vs scan_regions with shared reset tools *)

let fixture_ops =
  [
    B_store (2, 0);
    B_load (3, 64);
    B_advance 24;
    B_sys (1, 6);
    B_alu (Sp_isa.Isa.Xor, 4, 4, 6);
    B_store (4, 128);
  ]

let fixture_points specs =
  Array.of_list
    (List.mapi
       (fun i (start, len) ->
         {
           Sp_simpoint.Simpoints.cluster = i;
           slice_index = i;
           start_icount = start;
           length = len;
           weight = 0.5;
         })
       specs)

let test_tool_level_equivalence () =
  let prog = build_program ~iters:200 fixture_ops in
  let whole = Logger.log_whole ~benchmark:"warm-tlb" prog in
  let points = fixture_points [ (100, 80); (400, 120); (520, 60) ] in
  let wu = 150 in
  (* shared-scan reference *)
  let shared = Allcache_tool.create prog in
  let scan_stats = ref [] in
  let warmup =
    {
      Logger.length = wu;
      hooks = Sp_vm.Hooks.seq_all [ Allcache_tool.hooks shared ];
      on_start =
        (fun () ->
          Allcache_tool.reset_state shared;
          Allcache_tool.set_warming shared true);
    }
  in
  Logger.scan_regions ~warmup whole points (fun pb ->
      Allcache_tool.set_warming shared false;
      ignore (Replayer.replay ~tools:[ Allcache_tool.hooks shared ] pb);
      scan_stats :=
        ( Allcache_tool.stats shared,
          Allcache_tool.itlb_stats shared,
          Allcache_tool.dtlb_stats shared )
        :: !scan_stats);
  let scan_stats = List.rev !scan_stats in
  (* fresh per-point tools over the warm-prefixed pinballs *)
  let regions = Logger.capture_warm_regions ~warmup_insns:wu whole points in
  let fresh_stats =
    Array.to_list
      (Array.map
         (fun (wr : Logger.warm_region) ->
           let t = Allcache_tool.create prog in
           let hooks = [ Allcache_tool.hooks t ] in
           Allcache_tool.set_warming t true;
           ignore
             (Replayer.replay_prefixed ~prefix_tools:hooks ~tools:hooks
                ~prefix:wr.Logger.warm_prefix
                ~on_region:(fun () -> Allcache_tool.set_warming t false)
                wr.Logger.warm_pinball);
           ( Allcache_tool.stats t,
             Allcache_tool.itlb_stats t,
             Allcache_tool.dtlb_stats t ))
         regions)
  in
  Alcotest.(check int) "one result per point" (Array.length points)
    (List.length fresh_stats);
  Alcotest.(check bool) "hierarchy + TLB stats bit-identical" true
    (Stdlib.compare scan_stats fresh_stats = 0)

(* the warm prefix of the first point reaches before program start and
   must clamp to it; adjacent points leave no gap and must clamp to
   zero — both sides of the differential already cover this randomly,
   this pins the exact prefix lengths the capture computes *)
let test_capture_prefix_clamping () =
  let prog = build_program ~iters:100 fixture_ops in
  let whole = Logger.log_whole ~benchmark:"warm-clamp" prog in
  let points = fixture_points [ (40, 30); (70, 25) ] in
  let regions = Logger.capture_warm_regions ~warmup_insns:1_000 whole points in
  Alcotest.(check int) "first prefix clamps to program start" 40
    regions.(0).Logger.warm_prefix;
  Alcotest.(check int) "adjacent point clamps to zero" 0
    regions.(1).Logger.warm_prefix;
  let r0 = regions.(0).Logger.warm_pinball in
  Alcotest.(check (option int)) "pinball spans prefix + region" (Some 70)
    r0.Pinball.length

(* ------------------------------------------------------------------ *)
(* stable metrics are identical across job counts *)

let stable_fingerprint jobs =
  let prog = build_program ~iters:150 fixture_ops in
  let whole = Logger.log_whole ~benchmark:"warm-metrics" prog in
  let points = fixture_points [ (120, 90); (300, 110) ] in
  Sp_obs.Metrics.reset ();
  ignore
    (Pipeline.warm_replay_points
       { options with jobs }
       ~warmup_insns:123 whole points);
  let snap = Sp_obs.Metrics.stable_snapshot () in
  Sp_obs.Metrics.reset ();
  List.filter_map
    (fun (s : Sp_obs.Metrics.sample) ->
      match s.Sp_obs.Metrics.value with
      | Sp_obs.Metrics.Counter_value v -> Some (s.Sp_obs.Metrics.name, v)
      | _ -> None)
    snap

let test_stable_metrics_jobs_invariant () =
  let seq = stable_fingerprint 1 in
  let par = stable_fingerprint 3 in
  Alcotest.(check bool) "warm.points counted" true
    (List.assoc_opt "warm.points" seq = Some 2.0);
  Alcotest.(check bool) "some cache work counted" true
    (List.exists (fun (n, v) -> v > 0.0 && n <> "warm.points") seq);
  Alcotest.(check bool) "stable counters identical across jobs" true
    (seq = par)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_parallel_matches_scan;
    Alcotest.test_case "tool-level equivalence (caches + TLBs)" `Quick
      test_tool_level_equivalence;
    Alcotest.test_case "capture prefix clamping" `Quick
      test_capture_prefix_clamping;
    Alcotest.test_case "stable metrics jobs-invariant" `Quick
      test_stable_metrics_jobs_invariant;
  ]
