(* Tests for the observability layer (Sp_obs): the JSON codec, the
   metrics registry's cross-domain merge and its stable-metrics
   guarantee across job counts, the span tracer, and the trace-report
   aggregation behind `specrepro report`. *)

module J = Sp_obs.Json
module M = Sp_obs.Metrics
module T = Sp_obs.Tracer
module R = Sp_obs.Trace_report

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("a", J.Num 1.0);
        ("b", J.List [ J.Str "x\"\n\t\\"; J.Bool true; J.Null; J.Bool false ]);
        ("empty_obj", J.Obj []);
        ("empty_list", J.List []);
        ("neg", J.Num (-0.125));
        ("big", J.Num 1.5e300);
      ]
  in
  match J.parse (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_numbers () =
  Alcotest.(check string) "integral prints plain" "42" (J.to_string (J.Num 42.0));
  Alcotest.(check string) "negative integral" "-7" (J.to_string (J.Num (-7.0)));
  Alcotest.(check string) "nan degrades to null" "null"
    (J.to_string (J.Num Float.nan));
  Alcotest.(check string) "infinity degrades to null" "null"
    (J.to_string (J.Num Float.infinity));
  match J.parse "2.5e-3" with
  | Ok (J.Num x) -> Alcotest.(check (float 1e-12)) "scientific" 0.0025 x
  | _ -> Alcotest.fail "number parse"

let test_json_strings () =
  Alcotest.(check string) "control chars escape" {|"\u0001\t\\"|}
    (J.to_string (J.Str "\x01\t\\"));
  (match J.parse {|"Aé"|} with
  | Ok (J.Str s) -> Alcotest.(check string) "unicode to UTF-8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode parse");
  (* surrogate pair: U+1F600 *)
  match J.parse {|"😀"|} with
  | Ok (J.Str s) ->
      Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate parse"

let test_json_rejects () =
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    [
      "tru";
      "1 2";
      "\"unterminated";
      "{\"a\":}";
      "[1,]";
      "{\"a\":1,}";
      "";
      "{1:2}";
    ]

(* ------------------------------------------------------------------ *)
(* metrics *)

let test_counter_merge_across_domains () =
  let c = M.counter "test.obs.xdomain" in
  M.reset ();
  (* record from several pool domains; the snapshot must sum all shards *)
  let per_item = 500 in
  let items = Array.init 8 (fun i -> i) in
  ignore
    (Sp_util.Pool.parallel_map ~jobs:4
       (fun _ ->
         for _ = 1 to per_item do
           M.incr c
         done)
       items);
  M.add c 17;
  Alcotest.(check (option (float 0.0)))
    "summed over domains"
    (Some (float_of_int ((8 * per_item) + 17)))
    (M.counter_value (M.snapshot ()) "test.obs.xdomain")

let test_gauge_last_write_wins () =
  let g = M.gauge "test.obs.gauge" in
  M.reset ();
  M.set g 1.0;
  M.set g 42.0;
  match M.find "test.obs.gauge" (M.snapshot ()) with
  | Some { M.value = M.Gauge_value v; _ } ->
      Alcotest.(check (float 0.0)) "last write" 42.0 v
  | _ -> Alcotest.fail "gauge missing from snapshot"

let test_histogram_quantiles () =
  let h = M.histogram "test.obs.hist" in
  M.reset ();
  (* a point mass: every quantile must collapse to the single value *)
  for _ = 1 to 1000 do
    M.observe h 3.5
  done;
  let snap =
    match M.find "test.obs.hist" (M.snapshot ()) with
    | Some { M.value = M.Histogram_value hs; _ } -> hs
    | _ -> Alcotest.fail "histogram missing"
  in
  Alcotest.(check int) "count" 1000 snap.M.count;
  Alcotest.(check (float 1e-9)) "sum" 3500.0 snap.M.sum;
  Alcotest.(check (float 0.0)) "min" 3.5 snap.M.min;
  Alcotest.(check (float 0.0)) "max" 3.5 snap.M.max;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%g collapses" (q *. 100.))
        3.5 (M.quantile snap q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_histogram_quantile_spread () =
  let h = M.histogram "test.obs.hist2" in
  M.reset ();
  (* 1..100: octave buckets bound each quantile to its containing
     power-of-two interval, and min/max clamp the extremes exactly *)
  for i = 1 to 100 do
    M.observe h (float_of_int i)
  done;
  let snap =
    match M.find "test.obs.hist2" (M.snapshot ()) with
    | Some { M.value = M.Histogram_value hs; _ } -> hs
    | _ -> Alcotest.fail "histogram missing"
  in
  Alcotest.(check int) "count" 100 snap.M.count;
  Alcotest.(check (float 1e-9)) "sum" 5050.0 snap.M.sum;
  Alcotest.(check (float 0.0)) "q0 is min" 1.0 (M.quantile snap 0.0);
  Alcotest.(check (float 0.0)) "q1 is max" 100.0 (M.quantile snap 1.0);
  let p50 = M.quantile snap 0.5 in
  (* the 50th observation (=50) lies in the [32,64) bucket *)
  Alcotest.(check bool) "median in its octave" true (p50 >= 32.0 && p50 <= 64.0);
  let p90 = M.quantile snap 0.9 in
  Alcotest.(check bool) "p90 in its octave" true (p90 >= 64.0 && p90 <= 100.0);
  Alcotest.(check bool) "monotone" true (p50 <= p90)

let test_histogram_empty_quantile () =
  let h = M.histogram "test.obs.hist3" in
  M.reset ();
  ignore h;
  match M.find "test.obs.hist3" (M.snapshot ()) with
  | Some { M.value = M.Histogram_value hs; _ } ->
      Alcotest.(check bool) "nan on empty" true
        (Float.is_nan (M.quantile hs 0.5))
  | _ -> Alcotest.fail "histogram missing"

let test_register_dedup_and_mismatch () =
  let a = M.counter "test.obs.dedup" in
  let b = M.counter "test.obs.dedup" in
  M.reset ();
  M.incr a;
  M.incr b;
  Alcotest.(check (option (float 0.0)))
    "same underlying metric" (Some 2.0)
    (M.counter_value (M.snapshot ()) "test.obs.dedup");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       "Sp_obs.Metrics: \"test.obs.dedup\" already registered with another \
        kind")
    (fun () -> ignore (M.gauge "test.obs.dedup"))

let test_metrics_json_shape () =
  let c = M.counter "test.obs.jsonc" in
  M.reset ();
  M.add c 3;
  let j = M.to_json (M.snapshot ()) in
  match j with
  | J.List entries ->
      let found =
        List.exists
          (fun e ->
            J.member "name" e = Some (J.Str "test.obs.jsonc")
            && J.member "value" e = Some (J.Num 3.0))
          entries
      in
      Alcotest.(check bool) "counter rendered" true found
  | _ -> Alcotest.fail "to_json not a list"

(* ------------------------------------------------------------------ *)
(* stable metrics across job counts *)

let pipeline_options jobs =
  {
    Specrepro.Pipeline.default_options with
    slices_scale = 0.04;
    progress = false;
    jobs;
  }

let stable_fingerprint jobs =
  M.reset ();
  List.iter
    (fun name ->
      let spec = Sp_workloads.Suite.find name in
      ignore
        (Specrepro.Pipeline.run_benchmark ~options:(pipeline_options jobs) spec))
    [ "620.omnetpp_s"; "557.xz_r" ];
  List.filter_map
    (fun (s : M.sample) ->
      match s.M.value with
      | M.Counter_value v -> Some (s.M.name, v)
      | _ -> None)
    (M.stable_snapshot ())

let test_stable_metrics_jobs_equivalence () =
  let seq = stable_fingerprint 1 in
  let par = stable_fingerprint 4 in
  Alcotest.(check bool) "some work counted" true
    (List.exists (fun (_, v) -> v > 0.0) seq);
  Alcotest.(check bool) "vm.instructions counted" true
    (match List.assoc_opt "vm.instructions" seq with
    | Some v -> v > 1000.0
    | None -> false);
  List.iter
    (fun (name, v1) ->
      match List.assoc_opt name par with
      | None -> Alcotest.fail (name ^ " missing under jobs=4")
      | Some v4 ->
          Alcotest.(check (float 0.0)) (name ^ " identical across jobs") v1 v4)
    seq;
  Alcotest.(check int) "same metric set" (List.length seq) (List.length par)

(* ------------------------------------------------------------------ *)
(* tracer + trace report *)

let with_tracing f =
  T.clear ();
  T.enable ();
  Fun.protect
    ~finally:(fun () ->
      T.disable ();
      T.clear ())
    f

let test_tracer_disabled_is_passthrough () =
  T.clear ();
  T.disable ();
  let r = T.with_span "unrecorded" (fun () -> 7) in
  Alcotest.(check int) "result" 7 r;
  Alcotest.(check int) "no spans" 0 (T.span_count ())

let test_tracer_records_nested_and_exn () =
  with_tracing @@ fun () ->
  let r =
    T.with_span ~cat:"outer" "a" @@ fun () ->
    T.with_span ~cat:"inner" "b" (fun () -> ());
    (try T.with_span ~cat:"inner" "boom" (fun () -> failwith "x")
     with Failure _ -> ());
    41 + 1
  in
  Alcotest.(check int) "result through spans" 42 r;
  Alcotest.(check int) "three spans (incl. the raising one)" 3 (T.span_count ())

let test_trace_json_valid_and_balanced () =
  with_tracing @@ fun () ->
  T.with_span ~cat:"stage" ~args:[ ("bench", "demo") ] "build" (fun () ->
      T.with_span ~cat:"stage" "select" (fun () -> ()));
  T.with_span ~cat:"pipeline" ~args:[ ("bench", "demo") ] "benchmark"
    (fun () -> ());
  (* serialise and re-parse: the emitted document must be valid JSON
     with balanced, properly nested B/E pairs *)
  let doc =
    match J.parse (J.to_string (T.to_json ())) with
    | Ok d -> d
    | Error e -> Alcotest.fail ("trace not valid JSON: " ^ e)
  in
  match R.of_json doc with
  | Error e -> Alcotest.fail ("trace did not balance: " ^ e)
  | Ok r ->
      Alcotest.(check int) "events = 2 * spans" (2 * r.R.spans) r.R.events;
      Alcotest.(check int) "three spans" 3 r.R.spans;
      let stage_names = List.map (fun s -> s.R.label) r.R.stages in
      Alcotest.(check bool) "stages grouped" true
        (List.mem "build" stage_names && List.mem "select" stage_names);
      let bench_names = List.map (fun s -> s.R.label) r.R.benches in
      Alcotest.(check (list string)) "benchmark grouped by args.bench"
        [ "demo" ] bench_names

let test_trace_report_rejects_malformed () =
  (match R.of_json (J.Obj [ ("noTraceEvents", J.List []) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a document without traceEvents");
  let ev ph name ts =
    J.Obj
      [
        ("name", J.Str name);
        ("ph", J.Str ph);
        ("ts", J.Num ts);
        ("pid", J.Num 1.0);
        ("tid", J.Num 0.0);
      ]
  in
  (* unmatched begin *)
  (match R.of_json (J.Obj [ ("traceEvents", J.List [ ev "B" "a" 0.0 ]) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unclosed span");
  (* end without begin *)
  (match R.of_json (J.Obj [ ("traceEvents", J.List [ ev "E" "a" 1.0 ]) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a stray end");
  (* mismatched nesting *)
  match
    R.of_json
      (J.Obj
         [
           ( "traceEvents",
             J.List [ ev "B" "a" 0.0; ev "B" "b" 1.0; ev "E" "a" 2.0 ] );
         ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted crossed spans"

let test_pipeline_trace_stage_containment () =
  (* run a real (tiny) pipeline under tracing and check the structural
     invariants `specrepro report` relies on: stages balance, every
     stage appears once, and sequential child stages sum to no more
     than their enclosing benchmark span *)
  let r =
    with_tracing @@ fun () ->
    let spec = Sp_workloads.Suite.find "657.xz_s" in
    ignore
      (Specrepro.Pipeline.run_benchmark ~options:(pipeline_options 1) spec);
    match R.of_json (T.to_json ()) with
    | Ok r -> r
    | Error e -> Alcotest.fail ("pipeline trace invalid: " ^ e)
  in
  List.iter
    (fun stage ->
      match List.find_opt (fun s -> s.R.label = stage) r.R.stages with
      | Some s -> Alcotest.(check int) (stage ^ " ran once") 1 s.R.count
      | None -> Alcotest.fail ("missing stage span: " ^ stage))
    [ "build"; "log+profile"; "select"; "variance"; "cold-replay";
      "warm-replay" ];
  let stage_sum =
    List.fold_left (fun acc s -> acc +. s.R.total_us) 0.0 r.R.stages
  in
  let bench_total =
    match r.R.benches with
    | [ b ] -> b.R.total_us
    | _ -> Alcotest.fail "expected exactly one benchmark span"
  in
  Alcotest.(check bool) "stages nest inside the benchmark span" true
    (stage_sum <= bench_total +. 1e-6);
  Alcotest.(check bool) "benchmark span within the trace wall" true
    (bench_total <= r.R.wall_us +. 1e-6)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "json strings" `Quick test_json_strings;
    Alcotest.test_case "json rejects malformed" `Quick test_json_rejects;
    Alcotest.test_case "counter merge across domains" `Quick
      test_counter_merge_across_domains;
    Alcotest.test_case "gauge last write wins" `Quick
      test_gauge_last_write_wins;
    Alcotest.test_case "histogram point mass quantiles" `Quick
      test_histogram_quantiles;
    Alcotest.test_case "histogram quantile spread" `Quick
      test_histogram_quantile_spread;
    Alcotest.test_case "histogram empty quantile" `Quick
      test_histogram_empty_quantile;
    Alcotest.test_case "register dedup and kind mismatch" `Quick
      test_register_dedup_and_mismatch;
    Alcotest.test_case "metrics to_json shape" `Quick test_metrics_json_shape;
    Alcotest.test_case "tracer disabled passthrough" `Quick
      test_tracer_disabled_is_passthrough;
    Alcotest.test_case "tracer nested and exception spans" `Quick
      test_tracer_records_nested_and_exn;
    Alcotest.test_case "trace json valid and balanced" `Quick
      test_trace_json_valid_and_balanced;
    Alcotest.test_case "trace report rejects malformed" `Quick
      test_trace_report_rejects_malformed;
    Alcotest.test_case "stable metrics jobs equivalence" `Slow
      test_stable_metrics_jobs_equivalence;
    Alcotest.test_case "pipeline trace stage containment" `Slow
      test_pipeline_trace_stage_containment;
  ]
