(* Tests for Sp_vm: memory, programs, assembler, interpreter, snapshots. *)

open Sp_isa
open Sp_vm

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_roundtrip () =
  let m = Memory.create () in
  Memory.store m 0x1000 42;
  Memory.store m 0x1008 (-17);
  Alcotest.(check int) "read back" 42 (Memory.load m 0x1000);
  Alcotest.(check int) "negative" (-17) (Memory.load m 0x1008);
  Alcotest.(check int) "untouched" 0 (Memory.load m 0x2000)

let test_memory_float_view () =
  let m = Memory.create () in
  Memory.store m 0x100 7;
  Memory.storef m 0x100 3.25;
  Alcotest.(check int) "int view intact" 7 (Memory.load m 0x100);
  Alcotest.(check (float 0.0)) "float view" 3.25 (Memory.loadf m 0x100);
  Alcotest.(check (float 0.0)) "untouched float" 0.0 (Memory.loadf m 0x8000)

let test_memory_copy_isolated () =
  let a = Memory.create () in
  Memory.store a 0 1;
  let b = Memory.copy a in
  Memory.store b 0 2;
  Alcotest.(check int) "original unchanged" 1 (Memory.load a 0);
  Alcotest.(check int) "copy updated" 2 (Memory.load b 0)

let test_memory_footprint () =
  let m = Memory.create () in
  Alcotest.(check int) "empty" 0 (Memory.footprint_bytes m);
  Memory.store m 0 1;
  Alcotest.(check int) "one page" Memory.page_bytes (Memory.footprint_bytes m);
  Memory.store m 8 1;
  Alcotest.(check int) "same page" Memory.page_bytes (Memory.footprint_bytes m);
  Memory.clear m;
  Alcotest.(check int) "cleared" 0 (Memory.footprint_bytes m)

let prop_memory_sparse =
  QCheck.Test.make ~name:"memory store/load across address space" ~count:200
    QCheck.(pair (int_range 0 ((1 lsl 30) - 1)) int)
    (fun (addr, v) ->
      let m = Memory.create () in
      let addr = addr land lnot 7 in
      Memory.store m addr v;
      Memory.load m addr = v)

(* ------------------------------------------------------------------ *)
(* Program / basic blocks *)

let test_program_blocks () =
  (* 0: li       <- leader (entry)
     1: branch 4 <- ends block
     2: li       <- leader (fallthrough)
     3: jump 0   <- ends block
     4: halt     <- leader (target) *)
  let instrs =
    [|
      Isa.Li (0, 1);
      Isa.Branch (Isa.Eq, 0, 1, 4);
      Isa.Li (1, 2);
      Isa.Jump 0;
      Isa.Halt;
    |]
  in
  let p = Program.of_instrs ~name:"blocks" instrs in
  Alcotest.(check int) "three blocks" 3 (Program.num_blocks p);
  Alcotest.(check (list int)) "leaders"
    [ 0; 2; 4 ]
    (List.filteri (fun i _ -> p.Program.is_leader.(i)) [ 0; 1; 2; 3; 4 ]
    |> List.mapi (fun _ x -> x));
  Alcotest.(check int) "block of pc1" p.Program.bb_of_pc.(0) p.Program.bb_of_pc.(1);
  Alcotest.(check bool) "pc2 new block" true
    (p.Program.bb_of_pc.(2) <> p.Program.bb_of_pc.(1))

let test_program_validation () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Program.of_instrs: empty program") (fun () ->
      ignore (Program.of_instrs [||]));
  (try
     ignore (Program.of_instrs ~name:"bad" [| Isa.Jump 5; Isa.Halt |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_fetch_addr () =
  let p = Program.of_instrs ~code_base:0x1000 [| Isa.Halt |] in
  Alcotest.(check int) "fetch" (0x1000 + (0 * Isa.bytes_per_instr))
    (Program.fetch_addr p 0)

(* ------------------------------------------------------------------ *)
(* Asm *)

let test_asm_forward_backward () =
  let a = Asm.create () in
  let fwd = Asm.new_label a in
  Asm.li a 0 5;
  let back = Asm.here a in
  Asm.alui a Sub 0 0 1;
  Asm.branch a Gt 0 15 back;
  Asm.jump a fwd;
  Asm.li a 1 99;
  (* dead *)
  Asm.place a fwd;
  Asm.halt a;
  let p = Asm.assemble a in
  let m = Interp.create ~entry:0 () in
  let status = Interp.run p m in
  Alcotest.(check bool) "halted" true (status = Interp.Halted);
  Alcotest.(check int) "loop ran to 0" 0 m.Interp.regs.(0);
  Alcotest.(check int) "dead code skipped" 0 m.Interp.regs.(1)

let test_asm_unplaced_label () =
  let a = Asm.create ~name:"bad" () in
  let l = Asm.new_label a in
  Asm.jump a l;
  (try
     ignore (Asm.assemble a);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_asm_double_place () =
  let a = Asm.create () in
  let l = Asm.here a in
  try
    Asm.place a l;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_asm_rejects_control () =
  let a = Asm.create () in
  try
    Asm.instr a (Isa.Jump 0);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_asm_loop_down () =
  let a = Asm.create () in
  Asm.li a 1 0;
  Asm.loop_down a ~counter:2 ~from:7 (fun () -> Asm.alui a Add 1 1 1);
  Asm.halt a;
  let p = Asm.assemble a in
  let m = Interp.create ~entry:0 () in
  ignore (Interp.run p m);
  Alcotest.(check int) "body ran 7 times" 7 m.Interp.regs.(1)

(* ------------------------------------------------------------------ *)
(* Interp *)

let run_instrs instrs =
  let p = Program.of_instrs (Array.of_list (instrs @ [ Isa.Halt ])) in
  let m = Interp.create ~entry:0 () in
  ignore (Interp.run p m);
  m

let test_interp_arithmetic () =
  let m =
    run_instrs
      [
        Isa.Li (1, 20);
        Isa.Li (2, 6);
        Isa.Alu (Isa.Add, 3, 1, 2);
        Isa.Alu (Isa.Sub, 4, 1, 2);
        Isa.Alu (Isa.Mul, 5, 1, 2);
        Isa.Alu (Isa.Div, 6, 1, 2);
        Isa.Alu (Isa.Rem, 7, 1, 2);
        Isa.Alui (Isa.Shl, 8, 1, 2);
        Isa.Alui (Isa.Shr, 9, 1, 1);
      ]
  in
  Alcotest.(check int) "add" 26 m.Interp.regs.(3);
  Alcotest.(check int) "sub" 14 m.Interp.regs.(4);
  Alcotest.(check int) "mul" 120 m.Interp.regs.(5);
  Alcotest.(check int) "div" 3 m.Interp.regs.(6);
  Alcotest.(check int) "rem" 2 m.Interp.regs.(7);
  Alcotest.(check int) "shl" 80 m.Interp.regs.(8);
  Alcotest.(check int) "shr" 10 m.Interp.regs.(9)

let test_interp_div_by_zero () =
  let m =
    run_instrs
      [ Isa.Li (1, 5); Isa.Alu (Isa.Div, 2, 1, 0); Isa.Alu (Isa.Rem, 3, 1, 0) ]
  in
  Alcotest.(check int) "div0" 0 m.Interp.regs.(2);
  Alcotest.(check int) "rem0" 0 m.Interp.regs.(3)

let test_interp_branches () =
  List.iter
    (fun (c, a, b, expect) ->
      let m =
        run_instrs
          [
            Isa.Li (1, a);
            Isa.Li (2, b);
            Isa.Branch (c, 1, 2, 4);
            Isa.Li (3, 1);
            (* not taken path; pc 4 is the halt *)
          ]
      in
      let taken = m.Interp.regs.(3) = 0 in
      Alcotest.(check bool)
        (Printf.sprintf "cond %d %d" a b)
        expect taken)
    [
      (Isa.Eq, 3, 3, true);
      (Isa.Eq, 3, 4, false);
      (Isa.Ne, 3, 4, true);
      (Isa.Lt, 3, 4, true);
      (Isa.Lt, 4, 3, false);
      (Isa.Le, 4, 4, true);
      (Isa.Gt, 5, 4, true);
      (Isa.Ge, 4, 5, false);
    ]

let test_interp_call_ret () =
  (* 0: call 3 / 1: li r1 7 / 2: halt / 3: li r2 9 / 4: ret *)
  let p =
    Program.of_instrs
      [| Isa.Call 3; Isa.Li (1, 7); Isa.Halt; Isa.Li (2, 9); Isa.Ret |]
  in
  let m = Interp.create ~entry:0 () in
  ignore (Interp.run p m);
  Alcotest.(check int) "callee ran" 9 m.Interp.regs.(2);
  Alcotest.(check int) "returned" 7 m.Interp.regs.(1);
  Alcotest.(check int) "stack balanced" 0 m.Interp.sp

let test_interp_ret_underflow () =
  let p = Program.of_instrs [| Isa.Ret |] in
  let m = Interp.create ~entry:0 () in
  (try
     ignore (Interp.run p m);
     Alcotest.fail "expected Stack_error"
   with Interp.Stack_error _ -> ())

let test_interp_fuel_resume () =
  let a = Asm.create () in
  Asm.li a 1 0;
  let top = Asm.here a in
  Asm.alui a Add 1 1 1;
  Asm.jump a top;
  let p = Asm.assemble a in
  let m = Interp.create ~entry:0 () in
  let s1 = Interp.run ~fuel:100 p m in
  Alcotest.(check bool) "out of fuel" true (s1 = Interp.Out_of_fuel);
  Alcotest.(check int) "exact count" 100 m.Interp.icount;
  ignore (Interp.run ~fuel:50 p m);
  Alcotest.(check int) "resumed exactly" 150 m.Interp.icount

let test_interp_memory_ops () =
  let m =
    run_instrs
      [
        Isa.Li (1, 0x1000);
        Isa.Li (2, 77);
        Isa.Store (2, 1, 8);
        Isa.Load (3, 1, 8);
        (* movs: copy [0x1008] -> [0x2000] *)
        Isa.Li (4, 0x2000);
        Isa.Alui (Isa.Add, 5, 1, 8);
        Isa.Movs (4, 5);
        Isa.Load (6, 4, 0);
      ]
  in
  Alcotest.(check int) "load" 77 m.Interp.regs.(3);
  Alcotest.(check int) "movs" 77 m.Interp.regs.(6)

let test_interp_float_ops () =
  let m =
    run_instrs
      [
        Isa.Fmovi (1, 2.5);
        Isa.Fmovi (2, 4.0);
        Isa.Falu (Isa.Fmul, 3, 1, 2);
        Isa.Li (1, 0x100);
        Isa.Fstore (3, 1, 0);
        Isa.Fload (4, 1, 0);
        Isa.Cvtfi (5, 4);
      ]
  in
  Alcotest.(check (float 0.0)) "fmul" 10.0 m.Interp.fregs.(3);
  Alcotest.(check (float 0.0)) "fload" 10.0 m.Interp.fregs.(4);
  Alcotest.(check int) "cvtfi" 10 m.Interp.regs.(5)

let test_interp_syscall () =
  let p = Program.of_instrs [| Isa.Sys (3, 1); Isa.Halt |] in
  let m = Interp.create ~entry:0 () in
  ignore (Interp.run ~syscall:(fun n -> n * 11) p m);
  Alcotest.(check int) "injected" 33 m.Interp.regs.(1)

let test_hooks_fire () =
  let instr_count = ref 0 in
  let reads = ref [] in
  let writes = ref [] in
  let branches = ref [] in
  let blocks = ref 0 in
  let block_insns = ref 0 in
  let hooks =
    {
      Hooks.nil with
      Hooks.on_block = (fun _ -> incr blocks);
      on_block_exec = (fun _ n -> block_insns := !block_insns + n);
      on_instr = (fun _ _ -> incr instr_count);
      on_read = (fun a -> reads := a :: !reads);
      on_write = (fun a -> writes := a :: !writes);
      on_branch = (fun _ taken -> branches := taken :: !branches);
    }
  in
  let p =
    Program.of_instrs
      [|
        Isa.Li (1, 0x10);
        Isa.Store (1, 1, 0);
        Isa.Load (2, 1, 0);
        Isa.Branch (Isa.Eq, 1, 2, 5);
        Isa.Li (3, 1);
        Isa.Halt;
      |]
  in
  let m = Interp.create ~entry:0 () in
  ignore (Interp.run ~hooks p m);
  Alcotest.(check int) "instr hook count" m.Interp.icount !instr_count;
  Alcotest.(check int) "block_exec multiplicity" m.Interp.icount !block_insns;
  Alcotest.(check (list int)) "read addrs" [ 0x10 ] !reads;
  Alcotest.(check (list int)) "write addrs" [ 0x10 ] !writes;
  Alcotest.(check (list bool)) "branch taken" [ true ] !branches;
  Alcotest.(check bool) "blocks seen" true (!blocks >= 2)

let test_hooks_seq_order () =
  let log = ref [] in
  let mk tag = { Hooks.nil with on_instr = (fun _ _ -> log := tag :: !log) } in
  let h = Hooks.seq_all [ mk "a"; mk "b"; mk "c" ] in
  h.Hooks.on_instr 0 0;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_hooks_seq_all_flat_order () =
  (* a longer chain exercises the array-dispatch path of seq_all; every
     field must still fire in list order *)
  let log = ref [] in
  let mk tag =
    {
      Hooks.nil with
      Hooks.on_block = (fun _ -> log := ("b" ^ tag) :: !log);
      on_block_exec = (fun _ _ -> log := ("x" ^ tag) :: !log);
      on_instr = (fun _ _ -> log := ("i" ^ tag) :: !log);
      on_read = (fun _ -> log := ("r" ^ tag) :: !log);
      on_write = (fun _ -> log := ("w" ^ tag) :: !log);
      on_branch = (fun _ _ -> log := ("j" ^ tag) :: !log);
    }
  in
  let h = Hooks.seq_all [ mk "1"; mk "2"; mk "3"; mk "4"; mk "5" ] in
  h.Hooks.on_instr 0 0;
  h.Hooks.on_read 0;
  h.Hooks.on_branch 0 true;
  Alcotest.(check (list string)) "flattened order"
    [ "i1"; "i2"; "i3"; "i4"; "i5"; "r1"; "r2"; "r3"; "r4"; "r5";
      "j1"; "j2"; "j3"; "j4"; "j5" ]
    (List.rev !log)

let test_hooks_nil_detection () =
  Alcotest.(check bool) "nil is nil" true (Hooks.is_nil Hooks.nil);
  Alcotest.(check bool) "seq of nils is nil" true
    (Hooks.is_nil (Hooks.seq Hooks.nil Hooks.nil));
  Alcotest.(check bool) "seq_all of nils is nil" true
    (Hooks.is_nil (Hooks.seq_all [ Hooks.nil; Hooks.nil; Hooks.nil ]));
  Alcotest.(check bool) "seq_all [] is nil" true (Hooks.is_nil (Hooks.seq_all []));
  let live = { Hooks.nil with Hooks.on_read = (fun _ -> ()) } in
  Alcotest.(check bool) "live hook is not nil" false (Hooks.is_nil live);
  Alcotest.(check bool) "seq keeps live hook" false
    (Hooks.is_nil (Hooks.seq Hooks.nil live))

let test_interp_fast_path_equivalent () =
  (* the uninstrumented fast path must leave the machine in exactly the
     state the hooked loop does *)
  let p =
    Program.of_instrs
      [|
        Isa.Li (1, 0);
        Isa.Li (2, 100);
        Isa.Li (3, 0x40);
        Isa.Store (1, 3, 0);
        Isa.Load (4, 3, 0);
        Isa.Alui (Isa.Add, 1, 1, 1);
        Isa.Branch (Isa.Lt, 1, 2, 3);
        Isa.Halt;
      |]
  in
  let run hooks =
    let m = Interp.create ~entry:0 () in
    let status = Interp.run ~hooks ~fuel:350 p m in
    (status, m.Interp.pc, m.Interp.icount, Array.copy m.Interp.regs)
  in
  let counting = { Hooks.nil with on_instr = (fun _ _ -> ()) } in
  let s1, pc1, ic1, regs1 = run Hooks.nil in
  let s2, pc2, ic2, regs2 = run counting in
  Alcotest.(check bool) "status" true (s1 = s2);
  Alcotest.(check int) "pc" pc2 pc1;
  Alcotest.(check int) "icount" ic2 ic1;
  Alcotest.(check bool) "registers" true (regs1 = regs2)

(* ------------------------------------------------------------------ *)
(* Snapshot *)

let counting_program () =
  let a = Asm.create () in
  Asm.li a 1 0;
  Asm.li a 2 1000;
  let top = Asm.here a in
  Asm.alui a Add 1 1 1;
  Asm.li a 3 0x100;
  Asm.store a 1 3 0;
  Asm.alui a Sub 2 2 1;
  Asm.branch a Gt 2 15 top;
  Asm.halt a;
  Asm.assemble a

let test_snapshot_determinism () =
  let p = counting_program () in
  let m = Interp.create ~entry:0 () in
  ignore (Interp.run ~fuel:500 p m);
  let snap = Snapshot.capture m in
  let finish machine =
    ignore (Interp.run p machine);
    (machine.Interp.icount, machine.Interp.regs.(1), Memory.load machine.Interp.mem 0x100)
  in
  let r1 = finish (Snapshot.restore snap) in
  let r2 = finish (Snapshot.restore snap) in
  let r0 = finish m in
  Alcotest.(check bool) "restore twice equal" true (r1 = r2);
  Alcotest.(check bool) "restore equals original" true (r1 = r0)

let test_snapshot_isolation () =
  let p = counting_program () in
  let m = Interp.create ~entry:0 () in
  ignore (Interp.run ~fuel:500 p m);
  let snap = Snapshot.capture m in
  let mem_before = Memory.load m.Interp.mem 0x100 in
  (* mutating the original must not affect the snapshot *)
  ignore (Interp.run p m);
  let restored = Snapshot.restore snap in
  Alcotest.(check int) "snapshot froze memory" mem_before
    (Memory.load restored.Interp.mem 0x100);
  Alcotest.(check int) "icount recorded" 500 (Snapshot.icount snap)

let suite =
  [
    Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "memory float view" `Quick test_memory_float_view;
    Alcotest.test_case "memory copy isolation" `Quick test_memory_copy_isolated;
    Alcotest.test_case "memory footprint" `Quick test_memory_footprint;
    QCheck_alcotest.to_alcotest prop_memory_sparse;
    Alcotest.test_case "program blocks" `Quick test_program_blocks;
    Alcotest.test_case "program validation" `Quick test_program_validation;
    Alcotest.test_case "fetch addr" `Quick test_fetch_addr;
    Alcotest.test_case "asm labels" `Quick test_asm_forward_backward;
    Alcotest.test_case "asm unplaced label" `Quick test_asm_unplaced_label;
    Alcotest.test_case "asm double place" `Quick test_asm_double_place;
    Alcotest.test_case "asm rejects control" `Quick test_asm_rejects_control;
    Alcotest.test_case "asm loop_down" `Quick test_asm_loop_down;
    Alcotest.test_case "interp arithmetic" `Quick test_interp_arithmetic;
    Alcotest.test_case "interp div by zero" `Quick test_interp_div_by_zero;
    Alcotest.test_case "interp branches" `Quick test_interp_branches;
    Alcotest.test_case "interp call/ret" `Quick test_interp_call_ret;
    Alcotest.test_case "interp ret underflow" `Quick test_interp_ret_underflow;
    Alcotest.test_case "interp fuel/resume" `Quick test_interp_fuel_resume;
    Alcotest.test_case "interp memory ops" `Quick test_interp_memory_ops;
    Alcotest.test_case "interp float ops" `Quick test_interp_float_ops;
    Alcotest.test_case "interp syscall" `Quick test_interp_syscall;
    Alcotest.test_case "hooks fire" `Quick test_hooks_fire;
    Alcotest.test_case "hooks seq order" `Quick test_hooks_seq_order;
    Alcotest.test_case "hooks seq_all flat order" `Quick
      test_hooks_seq_all_flat_order;
    Alcotest.test_case "hooks nil detection" `Quick test_hooks_nil_detection;
    Alcotest.test_case "interp fast path equivalent" `Quick
      test_interp_fast_path_equivalent;
    Alcotest.test_case "snapshot determinism" `Quick test_snapshot_determinism;
    Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
  ]
